(* Tests for the dilution algorithms (TWM, DMRW) and the dilution engine
   of Roy et al. [20] — the N = 2 ancestor of the MDST engine. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_ratio () =
  let r = Mixtree.Dilution.ratio ~c:3 ~d:4 in
  check Alcotest.string "3:13" "3:13" (Dmf.Ratio.to_string r);
  check bool "c = 0 rejected" true
    (try ignore (Mixtree.Dilution.ratio ~c:0 ~d:4); false
     with Invalid_argument _ -> true);
  check bool "c = 2^d rejected" true
    (try ignore (Mixtree.Dilution.ratio ~c:16 ~d:4); false
     with Invalid_argument _ -> true)

let all_targets d =
  List.init (Dmf.Binary.pow2 d - 1) (fun i -> i + 1)

let test_twm_valid () =
  List.iter
    (fun d ->
      List.iter
        (fun c ->
          let ratio = Mixtree.Dilution.ratio ~c ~d in
          let tree = Mixtree.Dilution.twm ~c ~d in
          match Mixtree.Tree.validate ~ratio tree with
          | Ok () -> ()
          | Error e -> Alcotest.failf "twm %d/%d: %s" c (Dmf.Binary.pow2 d) e)
        (all_targets d))
    [ 1; 2; 3; 4; 5; 6 ]

let test_dmrw_valid () =
  List.iter
    (fun d ->
      List.iter
        (fun c ->
          let ratio = Mixtree.Dilution.ratio ~c ~d in
          let tree = Mixtree.Dilution.dmrw ~c ~d in
          match Mixtree.Tree.validate ~ratio tree with
          | Ok () -> ()
          | Error e -> Alcotest.failf "dmrw %d/%d: %s" c (Dmf.Binary.pow2 d) e)
        (all_targets d))
    [ 1; 2; 3; 4; 5; 6 ]

let test_dmrw_shared_mix_count () =
  (* Under full droplet sharing DMRW executes one mix-split per distinct
     intermediate mixture, plus a re-mix whenever a boundary droplet is
     needed more than twice (e.g. 7/16 re-mixes the 8/16 boundary);
     never more than twice the search-step count. *)
  List.iter
    (fun (c, d) ->
      let ratio = Mixtree.Dilution.ratio ~c ~d in
      let tree = Mixtree.Dilution.dmrw ~c ~d in
      let plan = Mdst.Forest.of_tree ~ratio ~demand:2 ~sharing:true tree in
      let steps = Mixtree.Dilution.dmrw_steps ~c ~d in
      let tms = Mdst.Plan.tms plan in
      check bool
        (Printf.sprintf "steps for %d/%d (steps=%d tms=%d)" c
           (Dmf.Binary.pow2 d) steps tms)
        true
        (steps <= tms && tms <= 2 * steps))
    [ (1, 4); (5, 4); (7, 4); (11, 5); (21, 6); (8, 4); (1, 1) ];
  (* Targets whose search path alternates need no re-mix at all. *)
  List.iter
    (fun (c, d) ->
      let ratio = Mixtree.Dilution.ratio ~c ~d in
      let plan =
        Mdst.Forest.of_tree ~ratio ~demand:2 ~sharing:true
          (Mixtree.Dilution.dmrw ~c ~d)
      in
      check int
        (Printf.sprintf "exact steps for %d/%d" c (Dmf.Binary.pow2 d))
        (Mixtree.Dilution.dmrw_steps ~c ~d)
        (Mdst.Plan.tms plan))
    [ (1, 4); (8, 4); (5, 4); (11, 4); (1, 1) ]

let test_dmrw_even_targets_reduce () =
  (* 8/16 is 1/2: a single mix. *)
  check int "8/16 needs one step" 1 (Mixtree.Dilution.dmrw_steps ~c:8 ~d:4);
  check int "12/16 needs two steps" 2 (Mixtree.Dilution.dmrw_steps ~c:12 ~d:4);
  check int "odd targets need d steps" 6 (Mixtree.Dilution.dmrw_steps ~c:33 ~d:6)

let test_dilution_engine_streams () =
  (* The [20] engine: multiple droplets of one dilution with reuse. *)
  let c = 7 and d = 4 in
  let ratio = Mixtree.Dilution.ratio ~c ~d in
  let tree = Mixtree.Dilution.dmrw ~c ~d in
  let demand = 16 in
  let engine = Mdst.Forest.of_tree ~ratio ~demand ~sharing:true tree in
  check bool "valid" true (Result.is_ok (Mdst.Plan.validate engine));
  check int "conservation" (Mdst.Plan.targets engine + Mdst.Plan.waste engine)
    (Mdst.Plan.input_total engine);
  (* Streaming wastes less reactant than repeating DMRW passes. *)
  let one_pass = Mdst.Forest.of_tree ~ratio ~demand:2 ~sharing:true tree in
  let repeated_inputs = 8 * Mdst.Plan.input_total one_pass in
  check bool "engine cheaper than repeated DMRW" true
    (Mdst.Plan.input_total engine < repeated_inputs)

let test_dmrw_no_worse_waste_than_twm_on_average () =
  (* DMRW's motivation: fewer waste droplets per pass than bit-scan. *)
  let d = 5 in
  let waste tree_of c =
    let ratio = Mixtree.Dilution.ratio ~c ~d in
    let plan = Mdst.Forest.of_tree ~ratio ~demand:2 ~sharing:true (tree_of c) in
    Mdst.Plan.waste plan
  in
  let total f =
    List.fold_left (fun acc c -> acc + f c) 0 (all_targets d)
  in
  let dmrw_total = total (waste (fun c -> Mixtree.Dilution.dmrw ~c ~d)) in
  let twm_total = total (waste (fun c -> Mixtree.Dilution.twm ~c ~d)) in
  check bool
    (Printf.sprintf "dmrw waste (%d) <= twm waste (%d)" dmrw_total twm_total)
    true (dmrw_total <= twm_total)

let prop_dmrw_valid_random =
  Generators.qtest ~count:200 "dmrw is exact for random targets"
    QCheck2.Gen.(int_range 3 9 >>= fun d ->
                 int_range 1 (Dmf.Binary.pow2 d - 1) >|= fun c -> (c, d))
    (fun (c, d) -> Printf.sprintf "%d/%d" c (Dmf.Binary.pow2 d))
    (fun (c, d) ->
      let ratio = Mixtree.Dilution.ratio ~c ~d in
      Result.is_ok (Mixtree.Tree.validate ~ratio (Mixtree.Dilution.dmrw ~c ~d)))

let prop_dilution_full_demand_no_waste =
  Generators.qtest ~count:100 "dilution engine at D = 2^d has no waste"
    QCheck2.Gen.(int_range 2 6 >>= fun d ->
                 int_range 1 (Dmf.Binary.pow2 d - 1) >|= fun c -> (c, d))
    (fun (c, d) -> Printf.sprintf "%d/%d" c (Dmf.Binary.pow2 d))
    (fun (c, d) ->
      let ratio = Mixtree.Dilution.ratio ~c ~d in
      let plan =
        Mdst.Forest.of_tree ~ratio ~demand:(Dmf.Ratio.sum ratio) ~sharing:true
          (Mixtree.Dilution.twm ~c ~d)
      in
      Mdst.Plan.waste plan = 0)

let () =
  Alcotest.run "dilution"
    [
      ( "targets",
        [
          Alcotest.test_case "ratio construction" `Quick test_ratio;
          Alcotest.test_case "TWM exact for every target" `Quick test_twm_valid;
          Alcotest.test_case "DMRW exact for every target" `Quick test_dmrw_valid;
          Alcotest.test_case "even targets reduce" `Quick
            test_dmrw_even_targets_reduce;
        ] );
      ( "engine",
        [
          Alcotest.test_case "shared mix count = search steps" `Quick
            test_dmrw_shared_mix_count;
          Alcotest.test_case "dilution engine streams" `Quick
            test_dilution_engine_streams;
          Alcotest.test_case "DMRW wastes no more than TWM" `Quick
            test_dmrw_no_worse_waste_than_twm_on_average;
        ] );
      ( "properties",
        [ prop_dmrw_valid_random; prop_dilution_full_demand_no_waste ] );
    ]
