let max_demand = 65_536
let max_units = 4_096

let ratio s =
  match Bioproto.Protocols.find s with
  | Some p -> Ok p.Bioproto.Protocols.ratio
  | None -> (
    try Ok (Dmf.Ratio.of_string s) with Invalid_argument msg -> Error msg)

let bounded ~what ~hi v =
  if v < 1 then Error (Printf.sprintf "%s must be positive (got %d)" what v)
  else if v > hi then
    Error (Printf.sprintf "%s must be at most %d (got %d)" what hi v)
  else Ok v

let demand v = bounded ~what:"demand D" ~hi:max_demand v
let mixers v = bounded ~what:"mixer count Mc" ~hi:max_units v

(* q' = 0 is a real operating point — streaming passes that park no
   droplet at all — so storage is only bounded, not forced positive. *)
let storage v =
  if v < 0 then Error (Printf.sprintf "storage budget q' must be >= 0 (got %d)" v)
  else if v > max_units then
    Error
      (Printf.sprintf "storage budget q' must be at most %d (got %d)" max_units
         v)
  else Ok v

let algorithm s =
  match Mixtree.Algorithm.of_string s with
  | Some a -> Ok a
  | None -> Error ("unknown algorithm " ^ s ^ " (MM, RMA, MTCS, RSM)")

let scheduler = Mdst.Scheduler.of_string

let protect f =
  try Ok (f ()) with
  | Invalid_argument msg | Failure msg -> Error msg

let run_cli f =
  match protect f with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "error: %s\n%!" msg;
    exit 2
