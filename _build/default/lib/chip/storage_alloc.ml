type t = ((int * int), string) Hashtbl.t

let allocate ~plan ~schedule ~units =
  let residencies = Mdst.Storage.residencies ~plan schedule in
  let sorted =
    List.sort
      (fun a b ->
        compare
          (a.Mdst.Storage.from_cycle, a.Mdst.Storage.producer)
          (b.Mdst.Storage.from_cycle, b.Mdst.Storage.producer))
      residencies
  in
  let free_at = Hashtbl.create 8 in
  List.iter (fun u -> Hashtbl.replace free_at u 0) units;
  let assignment : t = Hashtbl.create 16 in
  let rec place = function
    | [] -> Ok assignment
    | r :: rest ->
      (* First-fit: any unit free before the droplet arrives. *)
      let candidate =
        List.find_opt
          (fun u -> Hashtbl.find free_at u <= r.Mdst.Storage.from_cycle)
          units
      in
      (match candidate with
      | None ->
        Error
          (Printf.sprintf
             "droplet (%d,%d) needs storage during cycles %d..%d but all %d units are busy"
             r.Mdst.Storage.producer r.Mdst.Storage.port
             r.Mdst.Storage.from_cycle r.Mdst.Storage.to_cycle
             (List.length units))
      | Some u ->
        Hashtbl.replace free_at u (r.Mdst.Storage.to_cycle + 1);
        Hashtbl.replace assignment
          (r.Mdst.Storage.producer, r.Mdst.Storage.port)
          u;
        place rest)
  in
  place sorted

let unit_for t ~producer ~port = Hashtbl.find_opt t (producer, port)

let bindings t = Hashtbl.fold (fun key unit_id acc -> (key, unit_id) :: acc) t []
