(* dmfd — the demand-driven preparation daemon.

   Serves the MDST engine behind a newline-delimited JSON protocol:
   typed prepare/stats/ping requests go through a bounded admission
   queue that coalesces concurrent requests for the same target, a
   bounded LRU plan cache, and a fixed pool of planning workers on
   OCaml 5 domains.

     dmfd --stdio                      # serve stdin/stdout (tests, CI)
     dmfd --port 7433                  # serve TCP, one thread per client
     dmfd --port 7433 --wal-dir wal    # ... with crash recovery
     echo '{"req":"prepare","ratio":"2:1:1:1:1:1:9","D":20,"Mc":3}' \
       | dmfd --stdio

   With --wal-dir, accepted requests and completed jobs are journaled
   to a write-ahead log (lib/durable): on boot the daemon loads the
   latest snapshot, replays the journal tail, re-plans the recovered
   cache through the deterministic scheduler registry and resubmits
   requests that were accepted but never answered.  SIGTERM/SIGINT
   shut the daemon down cleanly: the queue drains, the workers join,
   and the journal is synced, snapshotted and compacted. *)

open Cmdliner

let stdio_arg =
  Arg.(
    value & flag
    & info [ "stdio" ]
        ~doc:"Serve newline-delimited JSON on stdin/stdout instead of TCP.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind (TCP mode).")

let port_arg =
  Arg.(
    value & opt int 7433
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:
          "TCP port to listen on. 0 binds a kernel-chosen ephemeral port and \
           announces it on stdout as a PORT=<n> line (machine-parseable, for \
           supervisors launching shard fleets).")

let workers_arg =
  Arg.(
    value & opt (some int) None
    & info [ "w"; "workers" ] ~docv:"N"
        ~doc:
          "Planning workers (OCaml domains). Defaults to \\$MDST_DOMAINS or \
           the physical core count.")

let queue_arg =
  Arg.(
    value & opt int 256
    & info [ "queue-capacity" ] ~docv:"N"
        ~doc:
          "Maximum pending planning jobs before admission blocks \
           (backpressure).")

let cache_arg =
  Arg.(
    value & opt int 1024
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Maximum cached plans (LRU eviction). 0 disables the cache.")

let wal_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "wal-dir" ] ~docv:"DIR"
        ~doc:
          "Enable durability: journal accepted requests and completed jobs \
           to a write-ahead log in $(docv), and recover state from it on \
           boot. Off by default.")

let fsync_batch_arg =
  Arg.(
    value & opt int 1
    & info [ "fsync-batch" ] ~docv:"N"
        ~doc:
          "fsync the journal after every $(docv) records. 1 (the default) \
           makes every response durable before the client sees it; larger \
           batches trade a bounded tail-loss window for throughput. 0 \
           disables count-based syncing.")

let fsync_ms_arg =
  Arg.(
    value & opt float 0.
    & info [ "fsync-ms" ] ~docv:"MS"
        ~doc:
          "Also fsync the journal once $(docv) milliseconds have passed \
           since the last sync (bounds the loss window of a large \
           --fsync-batch under a slow trickle of requests). 0 disables the \
           time trigger.")

let snapshot_arg =
  Arg.(
    value & opt int 512
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "Snapshot the durable state (and compact the journal) after every \
           $(docv) journaled records. 0 snapshots only on clean shutdown.")

let store_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "store-dir" ] ~docv:"DIR"
        ~doc:
          "Enable the content-addressed plan store: persist every built plan \
           to $(docv) and serve cache misses from it instead of re-planning. \
           Entries survive restarts and may be shared by several daemons \
           (shards) pointing at the same directory. Off by default.")

let store_max_bytes_arg =
  Arg.(
    value & opt (some int) None
    & info [ "store-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Bound the plan store's total size: once exceeded, oldest entries \
           are deleted down to 80% of $(docv) at each journal compaction \
           (and after writes). Unbounded by default.")

let run stdio host port workers queue_capacity cache_capacity wal_dir
    fsync_batch fsync_ms snapshot_every store_dir store_max_bytes =
  Service.Validate.run_cli (fun () ->
      let plan_store =
        Option.map
          (fun dir ->
            Durable.Plan_store.open_store ?max_bytes:store_max_bytes ~dir ())
          store_dir
      in
      let store =
        Option.map
          (fun ps ->
            {
              Service.Store.find = Durable.Plan_store.find ps;
              add = Durable.Plan_store.add ps;
              stats = (fun () -> Durable.Plan_store.stats_json ps);
            })
          plan_store
      in
      let durable =
        Option.map
          (fun dir ->
            let config =
              {
                Durable.Manager.dir;
                fsync = { Durable.Wal.every_n = fsync_batch; every_ms = fsync_ms };
                snapshot_every;
                cache_capacity;
              }
            in
            Durable.Manager.start ?store:plan_store config)
          wal_dir
      in
      let server =
        match durable with
        | None ->
          Service.Server.create ?workers ~queue_capacity ~cache_capacity ?store
            ()
        | Some (manager, _) ->
          Service.Server.create ?workers ~queue_capacity ~cache_capacity
            ~on_accept:(Durable.Manager.on_accept manager)
            ~on_complete:(fun ~spec ~requests ~ok ->
              Durable.Manager.on_complete manager ~spec ~requests ~ok)
            ~wal_stats:(fun () -> Durable.Manager.stats_json manager)
            ?store ()
      in
      (match (plan_store, durable) with
      | Some ps, None ->
        Printf.eprintf "dmfd: plan store at %s (%d entries)\n%!"
          (Durable.Plan_store.dir ps)
          (Durable.Plan_store.stats ps).Durable.Plan_store.entries
      | _ -> ());
      (match durable with
      | None -> ()
      | Some (manager, recovery) ->
        let t0 = Unix.gettimeofday () in
        let cache = Durable.Manager.recovered_cache manager in
        let pending = Durable.Manager.recovered_pending manager in
        let primed = Service.Server.prime server ~cache ~pending in
        let plans =
          primed.Service.Server.replanned + primed.Service.Server.from_store
        in
        let prime_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        Durable.Manager.note_prime manager ~ms:prime_ms
          ~replanned:primed.Service.Server.replanned
          ~from_store:primed.Service.Server.from_store
          ~pending:(List.length pending);
        Printf.eprintf
          "dmfd: recovered %d plan(s)%s and %d pending job(s) from %d \
           replayed record(s)%s%s in %.1f ms\n\
           %!"
          plans
          (if plan_store <> None then
             Printf.sprintf " (%d from the plan store, %d re-planned)"
               primed.Service.Server.from_store primed.Service.Server.replanned
           else "")
          (List.length pending) recovery.Durable.Replay.replayed
          (match recovery.Durable.Replay.snapshot_seq with
          | Some s -> Printf.sprintf " on snapshot #%d" s
          | None -> "")
          (if recovery.Durable.Replay.truncated > 0 then
             Printf.sprintf " (torn tail: %d line(s) dropped)"
               recovery.Durable.Replay.truncated
           else "")
          (recovery.Durable.Replay.wall_ms +. prime_ms);
        if recovery.Durable.Replay.gap then
          Printf.eprintf
            "dmfd: WARNING: journal had a sequence gap; snapshotted the \
             recovered state and quarantined %d segment(s)\n\
             %!"
            (Durable.Manager.quarantined_segments manager));
      (* Clean shutdown: drain the queue, join the workers, sync +
         snapshot + compact the journal — exactly once, whether it is
         triggered by SIGTERM/SIGINT or by stdin reaching EOF in
         --stdio mode (both can fire; the second caller waits for the
         first and then no-ops, so Pool.join never runs twice). *)
      let shutdown_lock = Mutex.create () in
      let stopped = ref false in
      let[@dmflint.allow
           "blocking-under-lock: shutdown_lock exists precisely to make \
            one caller do the blocking teardown (worker join + journal \
            close) while the loser waits for it; nothing else ever \
            takes this lock"] shutdown_once () =
        Mutex.lock shutdown_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock shutdown_lock)
          (fun () ->
            if not !stopped then begin
              stopped := true;
              Service.Server.stop server;
              match durable with
              | Some (manager, _) -> Durable.Manager.close manager
              | None -> ()
            end)
      in
      (* The handler runs on whichever thread takes the signal —
         possibly one that holds a server lock — so the actual teardown
         happens on a fresh thread that can take those locks
         normally. *)
      let shutdown _signal =
        ignore
          (Thread.create
             (fun () ->
               shutdown_once ();
               exit 0)
             ())
      in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
      Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
      if stdio then begin
        Service.Server.serve_channels server stdin stdout;
        shutdown_once ()
      end
      else
        (* The bound-port announcement goes to stdout (logs go to
           stderr) so a supervisor can launch `--port 0` shards and
           read back where each one landed. *)
        let on_listen bound =
          Printf.printf "PORT=%d\n%!" bound;
          Printf.eprintf "dmfd: serving on %s:%d with %d worker(s)%s\n%!" host
            bound
            (Service.Server.workers server)
            ((match wal_dir with
             | Some dir -> Printf.sprintf ", journaling to %s" dir
             | None -> "")
            ^
            match store_dir with
            | Some dir -> Printf.sprintf ", plan store at %s" dir
            | None -> "")
        in
        Service.Server.serve_tcp server ~on_listen ~host ~port)

let cmd =
  let doc = "demand-driven mixture-preparation server (NDJSON over stdio/TCP)" in
  let term =
    Term.(
      const run $ stdio_arg $ host_arg $ port_arg $ workers_arg $ queue_arg
      $ cache_arg $ wal_dir_arg $ fsync_batch_arg $ fsync_ms_arg
      $ snapshot_arg $ store_dir_arg $ store_max_bytes_arg)
  in
  Cmd.v (Cmd.info "dmfd" ~version:"1.0.0" ~doc) term

let () = exit (Cmd.eval cmd)
