lib/sim/executor.ml: Array Chip Dmf Hashtbl Int List Mdst Option Printf Result Trace
