test/test_forest.ml: Alcotest Dmf Generators List Mdst Mixtree Printf QCheck2 Result
