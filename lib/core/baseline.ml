let name algorithm = "R" ^ Mixtree.Algorithm.name algorithm

let pass_metrics ~algorithm ~ratio ~mixers =
  let plan = Forest.repeated ~algorithm ~ratio ~demand:2 in
  let s = Scheduler.schedule Scheduler.oms ~plan ~mixers in
  Metrics.of_schedule ~scheme:(name algorithm) ~plan s

let metrics ~algorithm ~ratio ~demand ~mixers =
  let pass = pass_metrics ~algorithm ~ratio ~mixers in
  let passes = Dmf.Binary.ceil_div demand 2 in
  {
    pass with
    Metrics.demand;
    tc = passes * pass.Metrics.tc;
    tms = passes * pass.Metrics.tms;
    waste = passes * pass.Metrics.waste;
    inputs = Array.map (fun c -> passes * c) pass.Metrics.inputs;
    input_total = passes * pass.Metrics.input_total;
    passes;
  }
