lib/core/streaming.mli: Dmf Mixtree Plan Schedule
