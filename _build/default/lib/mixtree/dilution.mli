(** Dilution — the two-fluid special case of mixture preparation.

    A dilution target is a single concentration factor [c / 2^d] of a
    {e sample} in a {e buffer} (distilled water).  This module provides
    the two classic single-target dilution algorithms the paper builds
    on, both expressed as mixing trees over the ratio [c : 2^d - c]:

    - {!twm}: the two-way-mix / bit-scan tree (one sample or buffer
      droplet joins per level following the binary expansion of [c]) —
      identical to Min-Mix on the dilution ratio;
    - {!dmrw}: the binary-search recipe of the waste-minimising dilution
      algorithm of Roy et al. [17, 19] — each step mixes the two current
      CF boundaries and halves the interval containing the target.

    Feeding either tree to [Mdst.Forest.of_tree ~sharing:true] with a
    demand [D] reproduces the {e dilution engine} of Roy et al. [20]:
    multiple droplets of a single dilution target with droplet re-use —
    the [N = 2] row of the paper's Table 1. *)

val sample : Dmf.Fluid.t
(** Fluid 0, supplied at CF 100%. *)

val buffer : Dmf.Fluid.t
(** Fluid 1, the neutral buffer. *)

val ratio : c:int -> d:int -> Dmf.Ratio.t
(** [ratio ~c ~d] is [c : 2^d - c].
    @raise Invalid_argument unless [1 <= c <= 2^d - 1]. *)

val twm : c:int -> d:int -> Tree.t
(** The bit-scan dilution tree; always valid for [ratio ~c ~d]. *)

val dmrw : c:int -> d:int -> Tree.t
(** The binary-search recipe tree.  Repeatedly-used boundary mixtures
    appear as structurally shared subtrees; executed with intra-pass
    sharing, one mix-split per binary-search step suffices.  Always valid
    for [ratio ~c ~d]. *)

val dmrw_steps : c:int -> d:int -> int
(** Number of binary-search steps of DMRW: [d] minus the number of
    trailing zero bits of [c] — the number of {e distinct} intermediate
    mixtures.  The executed mix-split count equals this when every
    boundary droplet is needed at most twice and exceeds it (by the
    necessary re-mixes) otherwise, never beyond twice the step count. *)
