type flows = ((string * string) * int) list

let flows_of_accounting accounting =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun m ->
      let key = (m.Actuation.src, m.Actuation.dst) in
      let current = Option.value ~default:0 (Hashtbl.find_opt counts key) in
      Hashtbl.replace counts key (current + 1))
    accounting.Actuation.movements;
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) counts []
  |> List.sort compare

let unreachable_penalty = 10_000

let flow_cost layout matrix flows =
  List.fold_left
    (fun acc ((src, dst), count) ->
      let cost =
        match (Layout.find layout src, Layout.find layout dst) with
        | Some _, Some _ ->
          if Cost_matrix.reachable matrix ~src ~dst then
            Cost_matrix.cost matrix ~src ~dst
          else unreachable_penalty
        | None, _ | _, None -> unreachable_penalty
      in
      acc + (count * cost))
    0 flows

let transport_cost layout flows = flow_cost layout (Cost_matrix.build layout) flows

(* Swap the rectangles of two same-kind, same-size modules. *)
let swap_modules layout a b =
  let ma = Layout.find_exn layout a and mb = Layout.find_exn layout b in
  let replace m =
    if m.Chip_module.id = a then { m with Chip_module.rect = mb.Chip_module.rect }
    else if m.Chip_module.id = b then
      { m with Chip_module.rect = ma.Chip_module.rect }
    else m
  in
  Layout.make ~width:(Layout.width layout) ~height:(Layout.height layout)
    ~modules:(List.map replace (Layout.modules layout))

let swap_groups layout =
  let same_size a b =
    a.Chip_module.rect.Geometry.w = b.Chip_module.rect.Geometry.w
    && a.Chip_module.rect.Geometry.h = b.Chip_module.rect.Geometry.h
  in
  let group modules =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun m' ->
            if
              m.Chip_module.id < m'.Chip_module.id && same_size m m'
            then Some (m.Chip_module.id, m'.Chip_module.id)
            else None)
          modules)
      modules
  in
  group (Layout.reservoirs layout)
  @ group (Layout.mixers layout)
  @ group (Layout.storage_units layout)

(* One candidate: apply the swap and re-evaluate with only the two
   touched modules re-flooded (same-size swaps keep the overall set of
   occupied cells identical, so no other distance can change). *)
let evaluate_swap ?scratch current matrix flows (a, b) =
  let candidate = swap_modules current a b in
  let matrix = Cost_matrix.update ?scratch matrix candidate ~changed:[ a; b ] in
  (candidate, matrix, flow_cost candidate matrix flows)

let optimize ?(iterations = 2000) ?(seed = 42) ?(batch = 1) layout ~flows =
  let pairs = Array.of_list (swap_groups layout) in
  if Array.length pairs = 0 then (layout, transport_cost layout flows)
  else begin
    let scratch = Router.Scratch.create () in
    let state = Random.State.make [| seed |] in
    let current = ref layout in
    let current_matrix = ref (Cost_matrix.build ~scratch layout) in
    let current_cost = ref (flow_cost layout !current_matrix flows) in
    let best = ref layout in
    let best_cost = ref !current_cost in
    let accept_step ~i (candidate, matrix, cost) =
      let temperature =
        float_of_int (iterations - i) /. float_of_int iterations
      in
      let accept =
        cost <= !current_cost
        || Random.State.float state 1.0
           < exp (float_of_int (!current_cost - cost) /. (temperature *. 50.))
      in
      if accept then begin
        current := candidate;
        current_matrix := matrix;
        current_cost := cost;
        if cost < !best_cost then begin
          best := candidate;
          best_cost := cost
        end
      end
    in
    if batch <= 1 then
      (* Sequential annealing: the RNG is consumed exactly as in the
         full-rebuild reference, so for a fixed seed the trajectory —
         and hence the returned layout — is bit-identical. *)
      for i = 0 to iterations - 1 do
        let pair = pairs.(Random.State.int state (Array.length pairs)) in
        accept_step ~i (evaluate_swap ~scratch !current !current_matrix flows pair)
      done
    else begin
      (* Batched annealing: draw [batch] independent candidate swaps of
         the current layout, evaluate them concurrently, then apply the
         annealing acceptance to the cheapest (first on ties).  The
         trajectory depends only on (seed, batch) — Mdst.Par.map keeps
         result order at any domain count. *)
      let i = ref 0 in
      while !i < iterations do
        let k = min batch (iterations - !i) in
        let drawn =
          List.init k (fun _ ->
              pairs.(Random.State.int state (Array.length pairs)))
        in
        let evaluated =
          Mdst.Par.map (evaluate_swap !current !current_matrix flows) drawn
        in
        let chosen =
          List.fold_left
            (fun acc ((_, _, cost) as candidate) ->
              match acc with
              | Some (_, _, best) when best <= cost -> acc
              | Some _ | None -> Some candidate)
            None evaluated
        in
        Option.iter (accept_step ~i:!i) chosen;
        i := !i + k
      done
    end;
    (!best, !best_cost)
  end

let optimize_for ?iterations ?seed ?batch ~plan ~schedule layout =
  match Actuation.account ~layout ~plan ~schedule with
  | Error e -> Error e
  | Ok accounting ->
    let flows = flows_of_accounting accounting in
    let before = accounting.Actuation.total_electrodes in
    let improved, _ = optimize ?iterations ?seed ?batch layout ~flows in
    (match Actuation.account ~layout:improved ~plan ~schedule with
    | Error e -> Error e
    | Ok improved_accounting ->
      Ok (improved, before, improved_accounting.Actuation.total_electrodes))

(* The original annealer, kept as the differential reference: every
   candidate pays a full matrix rebuild, so equality with [optimize]
   pins both the delta evaluation and the RNG discipline. *)
module Reference = struct
  let optimize ?(iterations = 2000) ?(seed = 42) layout ~flows =
    let pairs = Array.of_list (swap_groups layout) in
    if Array.length pairs = 0 then (layout, transport_cost layout flows)
    else begin
      let state = Random.State.make [| seed |] in
      let current = ref layout in
      let current_cost = ref (transport_cost layout flows) in
      let best = ref layout in
      let best_cost = ref !current_cost in
      for i = 0 to iterations - 1 do
        let a, b = pairs.(Random.State.int state (Array.length pairs)) in
        let candidate = swap_modules !current a b in
        let cost = transport_cost candidate flows in
        let temperature =
          float_of_int (iterations - i) /. float_of_int iterations
        in
        let accept =
          cost <= !current_cost
          || Random.State.float state 1.0
             < exp (float_of_int (!current_cost - cost) /. (temperature *. 50.))
        in
        if accept then begin
          current := candidate;
          current_cost := cost;
          if cost < !best_cost then begin
            best := candidate;
            best_cost := cost
          end
        end
      done;
      (!best, !best_cost)
    end
end
