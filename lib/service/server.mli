(** The demand-driven preparation server.

    One {!t} owns the admission queue, the LRU plan cache, the worker
    pool and the counters; any number of transports feed it.  The wire
    protocol is newline-delimited JSON ({!Request}, {!Response}) served
    either over stdin/stdout ({!serve_channels} — what [dmfd --stdio]
    runs, and what tests and CI use so no sockets are needed) or over
    TCP ({!serve_tcp}), one thread per connection sharing the same
    queue, cache and pool.

    {!serve_channels} pipelines: the reader admits requests as lines
    arrive (so a client that writes a burst before reading gets its
    identical requests coalesced into one planning job), while a writer
    thread emits responses strictly in request order.  [stats] requests
    are evaluated at their position in the response order, which makes
    the counters deterministic for a single-transport client: after [n]
    responses, [served = n]. *)

type t

val create :
  ?workers:int ->
  ?queue_capacity:int ->
  ?cache_capacity:int ->
  ?on_accept:(Request.spec -> unit) ->
  ?on_complete:(spec:Request.spec -> requests:int -> ok:bool -> unit) ->
  ?wal_stats:(unit -> Jsonl.t) ->
  ?repl_stats:(unit -> Jsonl.t) ->
  ?store:Store.t ->
  unit ->
  t
(** Start the pool.  [workers] defaults to {!Mdst.Par.default_domains}
    (so [MDST_DOMAINS] sizes the pool), [queue_capacity] to 256 pending
    jobs, [cache_capacity] to 1024 cached plans.

    The three optional hooks are how a write-ahead log observes the
    server without the service library depending on it ([dmfd] wires
    them to [Durable.Manager]):
    - [on_accept] fires for every admitted prepare request, in
      admission order, under the queue lock ({!Queue.create}'s
      [on_admit]);
    - [on_complete] fires for every resolved planning job — cache hits
      included, since a hit refreshes LRU recency — strictly {e before}
      the job's waiters are released, so a synced journal record always
      precedes the response a client can observe;
    - [wal_stats] is evaluated on each [stats] request and becomes the
      response's [wal] object;
    - [repl_stats] likewise becomes the response's [replication]
      object (a promoted follower or a feed-serving primary wires it,
      see [lib/replication]).

    [store] plugs in a second plan-cache tier (see {!Store}): workers
    consult it after an LRU miss and before planning, write every
    freshly built plan through to it, and {!prime} reads it before
    falling back to re-planning.  Its counters become the stats
    response's [plan_store] object. *)

val workers : t -> int

val stats : t -> Response.stats

val cache_keys : t -> string list
(** Cached plan keys, most recently used first (recovery tests compare
    these against the durable state model). *)

type primed = { replanned : int; from_store : int }
(** How {!prime} rebuilt each recovered plan: decoded from the plan
    store, or re-planned from scratch. *)

val prime : t -> cache:Request.spec list -> pending:Request.spec list -> primed
(** Rebuild recovered state on boot: for each [cache] spec (given least
    recently used first, reproducing the recency order), decode from
    the plan store when one is configured and the entry is valid,
    otherwise re-plan — both paths produce identical values, see the
    differential tests — then resubmit [pending] specs without waiters
    and without re-triggering [on_accept] (their accepted records are
    already journaled).  Specs that fail validation or planning are
    skipped and counted in neither field.  Call before serving any
    transport. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Serve one NDJSON stream until end of input; responses are flushed
    after every line.  Returns once every admitted request has been
    answered.  The server stays usable afterwards. *)

val serve_tcp : ?on_listen:(int -> unit) -> t -> host:string -> port:int -> unit
(** Bind, listen and serve forever, one thread per connection.
    [port = 0] binds an ephemeral port; [on_listen] receives the port
    actually bound (after [listen], before the first [accept]), which is
    how [dmfd --port 0] announces itself to the router launcher and to
    smoke tests.
    @raise Unix.Unix_error if the address cannot be bound. *)

val stop : t -> unit
(** Close the admission queue and join the workers.  Jobs already
    admitted are still completed first. *)
