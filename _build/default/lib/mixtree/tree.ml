type t =
  | Leaf of Dmf.Fluid.t
  | Mix of t * t

let rec depth = function
  | Leaf _ -> 0
  | Mix (a, b) -> 1 + max (depth a) (depth b)

let rec internal_count = function
  | Leaf _ -> 0
  | Mix (a, b) -> 1 + internal_count a + internal_count b

let rec leaf_count = function
  | Leaf _ -> 1
  | Mix (a, b) -> leaf_count a + leaf_count b

let waste_count t = max 0 (internal_count t - 1)

let input_vector ~n t =
  let counts = Array.make n 0 in
  let rec walk = function
    | Leaf f ->
      let i = Dmf.Fluid.index f in
      if i >= n then invalid_arg "Tree.input_vector: fluid out of range";
      counts.(i) <- counts.(i) + 1
    | Mix (a, b) ->
      walk a;
      walk b
  in
  walk t;
  counts

let rec value ~n = function
  | Leaf f -> Dmf.Mixture.pure ~n f
  | Mix (a, b) -> Dmf.Mixture.mix (value ~n a) (value ~n b)

let validate ~ratio t =
  let n = Dmf.Ratio.n_fluids ratio in
  let d = Dmf.Ratio.accuracy ratio in
  if depth t > d then
    Error
      (Printf.sprintf "tree depth %d exceeds accuracy level %d" (depth t) d)
  else
    let got = value ~n t in
    let want = Dmf.Mixture.of_ratio ratio in
    if Dmf.Mixture.equal got want then Ok ()
    else
      Error
        (Printf.sprintf "root value %s differs from target %s"
           (Dmf.Mixture.to_string got)
           (Dmf.Mixture.to_string want))

let subtrees_by_level ~d t =
  let rec walk level t acc =
    match t with
    | Leaf _ -> (level, t) :: acc
    | Mix (a, b) -> (level, t) :: walk (level - 1) a (walk (level - 1) b acc)
  in
  walk d t []

let rec equal a b =
  match (a, b) with
  | Leaf f, Leaf g -> Dmf.Fluid.equal f g
  | Mix (a1, a2), Mix (b1, b2) -> equal a1 b1 && equal a2 b2
  | Leaf _, Mix _ | Mix _, Leaf _ -> false

let pp ?names ppf t =
  let name f =
    match names with
    | Some names when Dmf.Fluid.index f < Array.length names ->
      names.(Dmf.Fluid.index f)
    | Some _ | None -> Dmf.Fluid.default_name f
  in
  let rec render prefix child_prefix ppf = function
    | Leaf f -> Format.fprintf ppf "%s%s@," prefix (name f)
    | Mix (a, b) ->
      Format.fprintf ppf "%smix@," prefix;
      render (child_prefix ^ "|-- ") (child_prefix ^ "|   ") ppf a;
      render (child_prefix ^ "`-- ") (child_prefix ^ "    ") ppf b
  in
  Format.fprintf ppf "@[<v>%a@]" (render "" "") t
