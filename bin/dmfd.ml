(* dmfd — the demand-driven preparation daemon.

   Serves the MDST engine behind a newline-delimited JSON protocol:
   typed prepare/stats/ping requests go through a bounded admission
   queue that coalesces concurrent requests for the same target, a
   bounded LRU plan cache, and a fixed pool of planning workers on
   OCaml 5 domains.

     dmfd --stdio                      # serve stdin/stdout (tests, CI)
     dmfd --port 7433                  # serve TCP, one thread per client
     echo '{"req":"prepare","ratio":"2:1:1:1:1:1:9","D":20,"Mc":3}' \
       | dmfd --stdio *)

open Cmdliner

let stdio_arg =
  Arg.(
    value & flag
    & info [ "stdio" ]
        ~doc:"Serve newline-delimited JSON on stdin/stdout instead of TCP.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind (TCP mode).")

let port_arg =
  Arg.(
    value & opt int 7433
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on.")

let workers_arg =
  Arg.(
    value & opt (some int) None
    & info [ "w"; "workers" ] ~docv:"N"
        ~doc:
          "Planning workers (OCaml domains). Defaults to \\$MDST_DOMAINS or \
           the physical core count.")

let queue_arg =
  Arg.(
    value & opt int 256
    & info [ "queue-capacity" ] ~docv:"N"
        ~doc:
          "Maximum pending planning jobs before admission blocks \
           (backpressure).")

let cache_arg =
  Arg.(
    value & opt int 1024
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Maximum cached plans (LRU eviction). 0 disables the cache.")

let run stdio host port workers queue_capacity cache_capacity =
  Service.Validate.run_cli (fun () ->
      let server =
        Service.Server.create ?workers ~queue_capacity ~cache_capacity ()
      in
      if stdio then begin
        Service.Server.serve_channels server stdin stdout;
        Service.Server.stop server
      end
      else begin
        Printf.eprintf "dmfd: serving on %s:%d with %d worker(s)\n%!" host port
          (Service.Server.workers server);
        Service.Server.serve_tcp server ~host ~port
      end)

let cmd =
  let doc = "demand-driven mixture-preparation server (NDJSON over stdio/TCP)" in
  let term =
    Term.(
      const run $ stdio_arg $ host_arg $ port_arg $ workers_arg $ queue_arg
      $ cache_arg)
  in
  Cmd.v (Cmd.info "dmfd" ~version:"1.0.0" ~doc) term

let () = exit (Cmd.eval cmd)
