(** Parallel-transport analysis of a scheduled forest.

    The executor serialises droplet moves (one at a time), which is safe
    but pessimistic about latency; a routing compiler moves all of a
    cycle's droplets concurrently.  This analysis groups the droplet
    movements of every schedule cycle into a batch, plans each batch
    with the space-time {!Chip.Parallel_router}, and reports how many
    transport sub-steps concurrent routing needs compared to the
    serialised total — the latency headroom a path-scheduling backend
    (Grissom and Brisk [8]) would recover. *)

type cycle_report = {
  cycle : int;
  moves : int;  (** Droplet movements in this cycle's batch. *)
  serial_steps : int;  (** Sum of the individual route lengths. *)
  parallel_steps : int;  (** Makespan of the concurrent plan. *)
  fallback : bool;
      (** [true] when prioritised planning failed and the serial value
          was used for this cycle. *)
}

type t = {
  cycles : cycle_report list;
  total_serial : int;
  total_parallel : int;
  speedup : float;  (** [total_serial / total_parallel] (1.0 when empty). *)
  fallbacks : int;
}

val analyze :
  layout:Chip.Layout.t ->
  plan:Mdst.Plan.t ->
  schedule:Mdst.Schedule.t ->
  (t, string) result
(** [analyze ~layout ~plan ~schedule] derives the per-cycle batches from
    the actuation accounting and plans them concurrently. *)
