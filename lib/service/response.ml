type summary = {
  scheme : string;
  mixers : int;
  demand : int;
  tc : int;
  q : int;
  tms : int;
  waste : int;
  input_total : int;
  trees : int;
  passes : int;
  within_limit : bool;
}

let summary_of_metrics (m : Mdst.Metrics.t) =
  {
    scheme = m.Mdst.Metrics.scheme;
    mixers = m.Mdst.Metrics.mixers;
    demand = m.Mdst.Metrics.demand;
    tc = m.Mdst.Metrics.tc;
    q = m.Mdst.Metrics.q;
    tms = m.Mdst.Metrics.tms;
    waste = m.Mdst.Metrics.waste;
    input_total = m.Mdst.Metrics.input_total;
    trees = m.Mdst.Metrics.trees;
    passes = m.Mdst.Metrics.passes;
    within_limit = true;
  }

type stats = {
  queue_depth : int;
  workers : int;
  served : int;
  errors : int;
  coalesced : int;
  jobs : int;
  plans_built : int;
  cache : Cache.stats;
  avg_latency_ms : float;
  uptime_s : float;
  wal : Jsonl.t option;
  store : Jsonl.t option;
  replication : Jsonl.t option;
}

type body =
  | Schedule of {
      summary : summary;
      demand : int;
      batch_demand : int;
      coalesced : int;
      cache_hit : bool;
      instr : Mdst.Instr.counters option;
    }
  | Pong
  | Stats of stats
  | Error of string

type t = { id : Jsonl.t option; elapsed_ms : float option; body : body }

let ok t = match t.body with Error _ -> false | _ -> true

let req_name = function
  | Schedule _ -> "prepare"
  | Pong -> "ping"
  | Stats _ -> "stats"
  | Error _ -> "error"

let to_json t =
  let base =
    [ ("ok", Jsonl.Bool (ok t)); ("req", Jsonl.String (req_name t.body)) ]
  in
  let id = match t.id with Some v -> [ ("id", v) ] | None -> [] in
  let payload =
    match t.body with
    | Pong -> []
    | Error msg -> [ ("error", Jsonl.String msg) ]
    | Schedule { summary = s; demand; batch_demand; coalesced; cache_hit; instr }
      ->
      [
        ("scheme", Jsonl.String s.scheme);
        ("Mc", Jsonl.Int s.mixers);
        ("D", Jsonl.Int demand);
        ("batch_D", Jsonl.Int batch_demand);
        ("Tc", Jsonl.Int s.tc);
        ("q", Jsonl.Int s.q);
        ("Tms", Jsonl.Int s.tms);
        ("W", Jsonl.Int s.waste);
        ("I", Jsonl.Int s.input_total);
        ("trees", Jsonl.Int s.trees);
        ("passes", Jsonl.Int s.passes);
        ("within_limit", Jsonl.Bool s.within_limit);
        ("coalesced", Jsonl.Int coalesced);
        ("cache_hit", Jsonl.Bool cache_hit);
      ]
      @ (match instr with
        | None -> []
        | Some c ->
          [
            ( "instr",
              Jsonl.Obj
                (List.map
                   (fun (k, v) ->
                     ( k,
                       if Float.is_integer v && Float.abs v < 1e15 then
                         Jsonl.Int (int_of_float v)
                       else Jsonl.Float v ))
                   (Mdst.Instr.counters_to_fields c)) );
          ])
    | Stats s ->
      [
        ("queue_depth", Jsonl.Int s.queue_depth);
        ("workers", Jsonl.Int s.workers);
        ("served", Jsonl.Int s.served);
        ("errors", Jsonl.Int s.errors);
        ("coalesced", Jsonl.Int s.coalesced);
        ("jobs", Jsonl.Int s.jobs);
        ("plans_built", Jsonl.Int s.plans_built);
        ( "cache",
          Jsonl.Obj
            [
              ("hits", Jsonl.Int s.cache.Cache.hits);
              ("misses", Jsonl.Int s.cache.Cache.misses);
              ("evictions", Jsonl.Int s.cache.Cache.evictions);
              ("size", Jsonl.Int s.cache.Cache.size);
              ("capacity", Jsonl.Int s.cache.Cache.capacity);
            ] );
        ("avg_latency_ms", Jsonl.Float s.avg_latency_ms);
        ("uptime_s", Jsonl.Float s.uptime_s);
      ]
      @ (match s.wal with Some w -> [ ("wal", w) ] | None -> [])
      @ (match s.store with Some st -> [ ("plan_store", st) ] | None -> [])
      @ (match s.replication with
        | Some r -> [ ("replication", r) ]
        | None -> [])
  in
  let elapsed =
    match t.elapsed_ms with
    | Some ms -> [ ("elapsed_ms", Jsonl.Float ms) ]
    | None -> []
  in
  Jsonl.Obj (base @ id @ payload @ elapsed)

let to_line t = Jsonl.to_string (to_json t)
