(* The paper's worked example (Sections 4-5): the PCR master-mix engine.

   Reproduces, in order: the MM base mixing tree, the mixing forest for
   D = 16 (Figure 1) and D = 20 (Figure 2), the SRS schedule with three
   mixers (Figure 3), its Gantt chart (Figure 4), the chip layout with
   the transport-cost matrix (Figure 5) and the electrode-actuation
   comparison against repeated MM (386 vs 980 in the paper), finishing
   with a droplet-level simulation of the whole run.

   Run with: dune exec examples/pcr_master_mix.exe *)

let ratio = Bioproto.Protocols.pcr ~d:4

let section title = print_string (Mdst.Report.section title)

let () =
  section "PCR master-mix: ratio 2:1:1:1:1:1:9 (d = 4)";
  Format.printf "volumetric ratio: %a, approximated from %s@." Dmf.Ratio.pp
    ratio "{10%:8%:0.8%:0.8%:1%:1%:78.4%}";

  let tree = Mixtree.Minmix.build ratio in
  Format.printf "@.MM base mixing tree (Mlb = %d):@.%a@."
    (Mixtree.Hu.min_mixers_for_fastest tree)
    (Mixtree.Tree.pp ~names:(Dmf.Ratio.names ratio))
    tree;

  section "Mixing forest, demand 16 (Figure 1)";
  let forest16 = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:16 in
  Format.printf "%a@." Mdst.Plan.pp_summary forest16;
  Format.printf "(paper: |F|=8, Tms=19, W=0, I=16)@.";

  section "Mixing forest, demand 20 (Figure 2)";
  let forest = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:20 in
  Format.printf "%a@." Mdst.Plan.pp_summary forest;
  Format.printf "(paper: |F|=10, Tms=27, W=5, I=25, I[]=[3,2,2,2,2,2,12])@.";

  section "SRS schedule with three mixers (Figures 3-4)";
  let schedule = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan:forest ~mixers:3 in
  print_string (Mdst.Gantt.render ~plan:forest schedule);
  Format.printf "(paper: Tc = 11, q = 5)@.";

  section "Chip layout (Figure 5)";
  let layout = Chip.Layout.pcr_fig5 () in
  print_string (Chip.Layout.render layout);
  let matrix = Chip.Cost_matrix.build layout in
  let ids ms = List.map (fun m -> m.Chip.Chip_module.id) ms in
  print_newline ();
  print_string
    (Chip.Cost_matrix.render
       ~rows:
         (ids (Chip.Layout.reservoirs layout)
         @ ids (Chip.Layout.storage_units layout)
         @ ids (Chip.Layout.wastes layout)
         @ ids (Chip.Layout.mixers layout))
       ~columns:(ids (Chip.Layout.mixers layout))
       matrix);

  section "Electrode actuations: streamed forest vs repeated MM";
  (match Chip.Actuation.account ~layout ~plan:forest ~schedule with
  | Error e -> Format.printf "accounting failed: %s@." e
  | Ok streamed ->
    (* The repeated baseline runs one pass at a time; its actuation count
       is ceil(D/2) times that of a single pass. *)
    let pass = Mdst.Forest.repeated ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:2 in
    let pass_schedule = Mdst.Scheduler.schedule Mdst.Scheduler.mms ~plan:pass ~mixers:3 in
    (match Chip.Actuation.account ~layout ~plan:pass ~schedule:pass_schedule with
    | Error e -> Format.printf "accounting failed: %s@." e
    | Ok one_pass ->
      let repeated = 10 * Chip.Actuation.total one_pass in
      Format.printf
        "streamed forest: %d electrodes; repeated MM (10 passes): %d \
         electrodes (%.1fx)@."
        (Chip.Actuation.total streamed)
        repeated
        (float_of_int repeated /. float_of_int (Chip.Actuation.total streamed));
      Format.printf "(paper, on its hand-placed layout: 386 vs 980 = 2.5x)@."));

  section "Placement optimisation (extension)";
  (match Chip.Placer.optimize_for ~iterations:1500 ~plan:forest ~schedule layout with
  | Error e -> Format.printf "placer failed: %s@." e
  | Ok (_, before, after) ->
    Format.printf "annealed placement: %d -> %d electrodes@." before after);

  section "Droplet-level simulation";
  (match Sim.Executor.run ~layout ~plan:forest ~schedule with
  | Error e -> Format.printf "simulation failed: %s@." e
  | Ok (_, stats) ->
    Format.printf
      "simulated %d cycles: %d moves, %d electrode actuations, %d dispenses, \
       %d targets emitted, %d waste droplets, %d segregation violations@."
      stats.Sim.Executor.cycles stats.Sim.Executor.moves
      stats.Sim.Executor.electrodes stats.Sim.Executor.dispensed
      (List.length stats.Sim.Executor.emitted)
      stats.Sim.Executor.discarded stats.Sim.Executor.violations;
    match Sim.Executor.check ~plan:forest stats with
    | Ok () -> Format.printf "every emitted droplet has the exact target CF vector@."
    | Error e -> Format.printf "verification failed: %s@." e)
