(** Deterministic aggregation of per-shard stats responses.

    Given one entry per ring shard — the client-side transport counters
    plus the shard's parsed stats body ([None] if the shard did not
    answer) — builds the cluster-wide stats payload: daemon counters
    summed, [cache] sub-counters summed, [avg_latency_ms] weighted by
    each shard's [served], [uptime_s] as the maximum, a [cluster]
    object with shard/healthy counts, and a [shards] array in ring
    order carrying each shard's address, health, transport counters and
    verbatim per-shard fields (including the nested [wal] object, which
    has no meaningful cluster-wide sum).  When any shard reports a
    [plan_store] object its counters are summed into a cluster-wide
    [plan_store], except the on-disk totals ([entries], [bytes],
    [max_bytes]), which merge as maxima: shards share one store
    directory, so summing would count the same files once per shard.

    The output is a pure function of the inputs: fan-out timing and
    completion order cannot change it. *)

val merge :
  (Shard_client.stats * Service.Jsonl.t option) list -> Service.Jsonl.t
(** The returned object is the merged stats {e body}; the router adds
    the protocol envelope ([ok]/[req]/[id]). *)
