lib/core/split_error.ml: Array Dmf List Plan
