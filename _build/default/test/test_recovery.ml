(* Tests for checkpoint-based error recovery (reserve-seeded forests). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

let prepared demand =
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  (plan, schedule)

(* ------------------------------------------------------------------ *)
(* Reserve-seeded forests                                              *)

let test_reserves_consumed_first () =
  (* A reserve droplet carrying the target value of a subtree replaces
     its recomputation. *)
  let ratio = pcr in
  let tree = Mixtree.Minmix.build ratio in
  let plain = Mdst.Forest.of_tree ~ratio ~demand:2 ~sharing:true tree in
  let half_water =
    (* The value of the level-1 node mixing x4 and x5. *)
    Dmf.Mixture.mix
      (Dmf.Mixture.pure ~n:7 (Dmf.Fluid.make 3))
      (Dmf.Mixture.pure ~n:7 (Dmf.Fluid.make 4))
  in
  let seeded =
    Mdst.Forest.of_tree ~reserves:[| half_water |] ~ratio ~demand:2
      ~sharing:true tree
  in
  check bool "seeding reduces the mix count" true
    (Mdst.Plan.tms seeded < Mdst.Plan.tms plain);
  check bool "seeded plan valid" true (Result.is_ok (Mdst.Plan.validate seeded));
  check bool "reserve consumed" true (Mdst.Plan.reserve_consumed seeded 0);
  check int "two fewer inputs"
    (Mdst.Plan.input_total plain - 2)
    (Mdst.Plan.input_total seeded)

let test_unused_reserve_is_not_waste () =
  let ratio = Dmf.Ratio.of_string "3:5" in
  let tree = Mixtree.Minmix.build ratio in
  (* A reserve with a value the plan never needs. *)
  let alien = Dmf.Mixture.pure ~n:2 (Dmf.Fluid.make 0) in
  let seeded =
    Mdst.Forest.of_tree ~reserves:[| alien |] ~ratio ~demand:2 ~sharing:false
      tree
  in
  check bool "pure reserve gets used as an input substitute or ignored" true
    (Result.is_ok (Mdst.Plan.validate seeded))

let test_reserve_storage_occupancy () =
  (* A never-consumed reserve occupies one storage unit throughout. *)
  let ratio = Dmf.Ratio.of_string "3:5" in
  let tree = Mixtree.Minmix.build ratio in
  let odd_value =
    Dmf.Mixture.mix
      (Dmf.Mixture.mix
         (Dmf.Mixture.pure ~n:2 (Dmf.Fluid.make 0))
         (Dmf.Mixture.pure ~n:2 (Dmf.Fluid.make 1)))
      (Dmf.Mixture.pure ~n:2 (Dmf.Fluid.make 1))
  in
  let plain = Mdst.Forest.of_tree ~ratio ~demand:2 ~sharing:false tree in
  let seeded =
    Mdst.Forest.of_tree ~reserves:[| odd_value |] ~ratio ~demand:2
      ~sharing:false tree
  in
  (* The 1:3/8 value does not appear in the 3:5 tree, so the reserve
     stays unused. *)
  check bool "reserve indeed unused" false (Mdst.Plan.reserve_consumed seeded 0);
  let q plan = Mdst.Storage.units ~plan (Mdst.Mms.schedule ~plan ~mixers:2) in
  check int "one extra storage unit" (q plain + 1) (q seeded)

let test_executor_rejects_reserves () =
  let ratio = pcr in
  let tree = Mixtree.Minmix.build ratio in
  let half_water =
    Dmf.Mixture.mix
      (Dmf.Mixture.pure ~n:7 (Dmf.Fluid.make 3))
      (Dmf.Mixture.pure ~n:7 (Dmf.Fluid.make 4))
  in
  let seeded =
    Mdst.Forest.of_tree ~reserves:[| half_water |] ~ratio ~demand:2
      ~sharing:true tree
  in
  let schedule = Mdst.Srs.schedule ~plan:seeded ~mixers:3 in
  let layout = Chip.Layout.pcr_fig5 () in
  check bool "simulator declines reserve plans" true
    (Result.is_error (Sim.Executor.run ~layout ~plan:seeded ~schedule));
  check bool "actuation declines reserve plans" true
    (Result.is_error (Chip.Actuation.account ~layout ~plan:seeded ~schedule))

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

let test_recovery_every_node () =
  let plan, schedule = prepared 20 in
  List.iter
    (fun node ->
      let r =
        Mdst.Recovery.recover ~algorithm:Mixtree.Algorithm.MM ~plan ~schedule
          ~failed_node:node.Mdst.Plan.id
      in
      check bool "delivered within demand" true
        (r.Mdst.Recovery.delivered >= 0
        && r.Mdst.Recovery.delivered <= Mdst.Plan.demand plan);
      match r.Mdst.Recovery.recovery_plan with
      | None ->
        check bool "no recovery only when demand met" true
          (r.Mdst.Recovery.remaining_demand <= 0)
      | Some recovery ->
        check bool "recovery plan valid" true
          (Result.is_ok (Mdst.Plan.validate recovery));
        check bool "recovery covers the remaining demand" true
          (Mdst.Plan.targets recovery >= r.Mdst.Recovery.remaining_demand);
        check bool "salvage never hurts" true
          (Mdst.Recovery.reagent_saving r >= 0);
        (* Recovery plans schedule like any other. *)
        let s = Mdst.Srs.schedule ~plan:recovery ~mixers:3 in
        check bool "recovery schedulable" true
          (Result.is_ok (Mdst.Schedule.validate ~plan:recovery s)))
    (Mdst.Plan.nodes plan)

let test_early_failure_costs_most () =
  let plan, schedule = prepared 20 in
  let remaining failed_node =
    (Mdst.Recovery.recover ~algorithm:Mixtree.Algorithm.MM ~plan ~schedule
       ~failed_node)
      .Mdst.Recovery.remaining_demand
  in
  (* Node 0 executes in cycle 1; the last root executes at Tc. *)
  let last_root = List.hd (List.rev (Mdst.Plan.roots plan)) in
  check bool "early failure leaves more to redo" true
    (remaining 0 >= remaining last_root)

let test_recovery_rejects_bad_input () =
  let plan, schedule = prepared 8 in
  check bool "node out of range" true
    (try
       ignore
         (Mdst.Recovery.recover ~algorithm:Mixtree.Algorithm.MM ~plan
            ~schedule ~failed_node:999);
       false
     with Invalid_argument _ -> true);
  let multi =
    Mdst.Forest.build_multi ~algorithm:Mixtree.Algorithm.MM
      [ (Dmf.Ratio.of_string "3:5", 2); (Dmf.Ratio.of_string "1:7", 2) ]
  in
  let s = Mdst.Mms.schedule ~plan:multi ~mixers:2 in
  check bool "multi-target rejected" true
    (try
       ignore
         (Mdst.Recovery.recover ~algorithm:Mixtree.Algorithm.MM ~plan:multi
            ~schedule:s ~failed_node:0);
       false
     with Invalid_argument _ -> true)

let prop_recovery_sound =
  Generators.qtest ~count:60 "recovery is sound for random instances"
    QCheck2.Gen.(pair Generators.ratio_gen (int_range 2 16))
    (fun (r, d) -> Printf.sprintf "%s D=%d" (Dmf.Ratio.to_string r) d)
    (fun (ratio, demand) ->
      let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand in
      let schedule = Mdst.Mms.schedule ~plan ~mixers:2 in
      let failed_node = Mdst.Plan.n_nodes plan / 2 in
      let r =
        Mdst.Recovery.recover ~algorithm:Mixtree.Algorithm.MM ~plan ~schedule
          ~failed_node
      in
      (match r.Mdst.Recovery.recovery_plan with
      | None -> r.Mdst.Recovery.remaining_demand <= 0
      | Some recovery ->
        Result.is_ok (Mdst.Plan.validate recovery)
        && Mdst.Plan.targets recovery >= r.Mdst.Recovery.remaining_demand)
      && Mdst.Recovery.reagent_saving r >= 0)

let () =
  Alcotest.run "recovery"
    [
      ( "reserves",
        [
          Alcotest.test_case "reserves consumed first" `Quick
            test_reserves_consumed_first;
          Alcotest.test_case "unused reserve is not waste" `Quick
            test_unused_reserve_is_not_waste;
          Alcotest.test_case "reserve storage occupancy" `Quick
            test_reserve_storage_occupancy;
          Alcotest.test_case "physical backends decline reserves" `Quick
            test_executor_rejects_reserves;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "recover from every node" `Quick
            test_recovery_every_node;
          Alcotest.test_case "early failures cost most" `Quick
            test_early_failure_costs_most;
          Alcotest.test_case "rejects bad input" `Quick
            test_recovery_rejects_bad_input;
          prop_recovery_sound;
        ] );
    ]
