lib/mixtree/algorithm.mli: Dmf Format Tree
