(* Handles are records of strings so that specs containing a scheduler
   stay structurally comparable; the policy (a first-class module, which
   polymorphic compare would choke on) lives in the registry table and
   is looked up by name at dispatch time. *)
type t = { name : string; describe : string }

let table : (string, t * Sched_core.policy) Hashtbl.t = Hashtbl.create 8
let order : t list ref = ref []
let lock = Mutex.create ()

let register ~name ~describe policy =
  if String.trim name = "" then
    invalid_arg "Scheduler.register: scheduler name cannot be empty";
  let key = String.uppercase_ascii name in
  let handle = { name; describe } in
  Mutex.lock lock;
  let duplicate = Hashtbl.mem table key in
  if not duplicate then begin
    Hashtbl.replace table key (handle, policy);
    order := !order @ [ handle ]
  end;
  Mutex.unlock lock;
  if duplicate then
    invalid_arg ("Scheduler.register: duplicate scheduler name " ^ name);
  handle

let mms =
  register ~name:"MMS"
    ~describe:
      "M_Mixers_Schedule (Alg. 1): level-wise FIFO list scheduling, fastest \
       completion"
    Mms.policy

let srs =
  register ~name:"SRS"
    ~describe:
      "Storage_Reduced_Scheduling (Alg. 2): two priority queues, fewer \
       on-chip storage units"
    Srs.policy

let oms =
  register ~name:"OMS"
    ~describe:
      "critical-path (Hu) list scheduling: optimal on a single mixing tree; \
       the repeated-baseline scheduler"
    Oms.policy

let all () =
  Mutex.lock lock;
  let entries = !order in
  Mutex.unlock lock;
  entries

let name t = t.name
let describe t = t.describe
let to_string t = t.name
let pp ppf t = Format.pp_print_string ppf t.name

let of_string s =
  let key = String.uppercase_ascii (String.trim s) in
  Mutex.lock lock;
  let found = Hashtbl.find_opt table key in
  Mutex.unlock lock;
  match found with
  | Some (handle, _) -> Ok handle
  | None ->
    let known = String.concat ", " (List.map (fun t -> t.name) (all ())) in
    Error (Printf.sprintf "unknown scheduler %s (%s)" s known)

let policy t =
  Mutex.lock lock;
  let found = Hashtbl.find_opt table (String.uppercase_ascii t.name) in
  Mutex.unlock lock;
  match found with
  | Some (_, policy) -> policy
  | None -> invalid_arg ("Scheduler: unregistered scheduler " ^ t.name)

let schedule ?instr t ~plan ~mixers =
  Sched_core.run ?instr (policy t) ~plan ~mixers
