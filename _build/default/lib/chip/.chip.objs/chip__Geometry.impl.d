lib/chip/geometry.ml: Format Fun List
