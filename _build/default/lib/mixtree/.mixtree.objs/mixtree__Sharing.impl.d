lib/mixtree/sharing.ml: Array Dmf Hashtbl Int List Option Tree
