(** SVG rendering of a forest schedule — the graphical Figure 4.

    One row per mixer, one column per time-cycle; each mix-split cell is
    coloured by its component tree and labelled [m_ij], with a tooltip
    giving the droplet value.  A storage-occupancy bar chart and the
    target-emission markers sit below the mixer rows. *)

val render : plan:Mdst.Plan.t -> Mdst.Schedule.t -> string
(** A standalone SVG document. *)

val write : path:string -> plan:Mdst.Plan.t -> Mdst.Schedule.t -> unit
(** Write the document to a file.  @raise Sys_error on IO failure. *)
