lib/dmf/ratio.ml: Array Binary Fluid Format Fun List String
