(** Bounded LRU plan cache.

    The PR 1 memo caches inside {!Mdst.Forest} and {!Mdst.Engine} are
    unbounded reset-on-overflow tables keyed by ratio; a long-running
    server needs real eviction and observable counters instead.  Keys
    are the canonical request strings of {!Request.cache_key}; values
    are whatever the worker wants to reuse (prepared plans).  All
    operations are mutex-guarded and safe across domains. *)

type 'v t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val create : capacity:int -> 'v t
(** [capacity] is the maximum number of live entries; [0] disables
    caching entirely (every {!find} is a miss, {!add} is a no-op).
    @raise Invalid_argument if negative. *)

val find : 'v t -> string -> 'v option
(** Lookup; counts a hit or a miss and, on a hit, marks the entry most
    recently used. *)

val add : 'v t -> string -> 'v -> unit
(** Insert (or overwrite) as most recently used, evicting the least
    recently used entry if the cache is over capacity. *)

val peek : 'v t -> string -> 'v option
(** Lookup with no effect on counters or recency (for tests). *)

val keys : 'v t -> string list
(** Live keys, most recently used first (for tests). *)

val stats : 'v t -> stats

val clear : 'v t -> unit
(** Drop every entry; counters keep accumulating. *)
