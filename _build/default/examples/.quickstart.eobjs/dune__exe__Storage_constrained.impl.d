examples/storage_constrained.ml: Bioproto Dmf Format List Mdst Mixtree
