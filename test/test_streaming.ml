(* Tests for the multi-pass droplet-streaming engine (Table 4). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

let run ?(d = 4) ?(demand = 32) ?(mixers = 3) ~q () =
  let ratio = if d = 4 then pcr else Bioproto.Protocols.pcr ~d in
  Mdst.Streaming.run ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand ~mixers
    ~storage_limit:q ~scheduler:Mdst.Scheduler.srs ()

(* The d = 4 column of Table 4 reproduces exactly. *)
let test_table4_d4_q3 () =
  let case demand passes tc waste =
    let r = run ~q:3 ~demand () in
    check int (Printf.sprintf "passes D=%d" demand) passes (Mdst.Streaming.n_passes r);
    check int (Printf.sprintf "Tc D=%d" demand) tc r.Mdst.Streaming.total_cycles;
    check int (Printf.sprintf "W D=%d" demand) waste r.Mdst.Streaming.total_waste
  in
  case 2 1 4 6;
  case 16 2 10 7;
  case 20 2 11 5;
  case 32 3 17 7

let test_table4_d4_q5 () =
  let r16 = run ~q:5 ~demand:16 () in
  check int "one pass" 1 (Mdst.Streaming.n_passes r16);
  check int "Tc (paper: 7)" 7 r16.Mdst.Streaming.total_cycles;
  check int "no waste" 0 r16.Mdst.Streaming.total_waste

let test_budget_respected () =
  List.iter
    (fun q ->
      let r = run ~q () in
      if r.Mdst.Streaming.within_limit then
        List.iter
          (fun pass ->
            check bool
              (Printf.sprintf "pass q <= %d" q)
              true
              (pass.Mdst.Streaming.q <= q))
          r.Mdst.Streaming.passes)
    [ 1; 2; 3; 5; 7; 30 ]

let test_total_demand_met () =
  List.iter
    (fun demand ->
      let r = run ~q:3 ~demand () in
      let produced =
        List.fold_left
          (fun acc p -> acc + Mdst.Plan.targets p.Mdst.Streaming.plan)
          0 r.Mdst.Streaming.passes
      in
      check bool (Printf.sprintf "targets >= demand %d" demand) true
        (produced >= demand))
    [ 2; 5; 16; 31; 32 ]

let test_more_storage_fewer_passes () =
  let previous = ref max_int in
  List.iter
    (fun q ->
      let r = run ~q () in
      let passes = Mdst.Streaming.n_passes r in
      check bool (Printf.sprintf "passes nonincreasing at q=%d" q) true
        (passes <= !previous);
      previous := passes)
    [ 1; 2; 3; 4; 5; 6; 7 ]

let test_infeasible_budget_flagged () =
  (* d = 6 single pair needs more than zero storage with one mixer. *)
  let ratio = Bioproto.Protocols.pcr ~d:6 in
  let r =
    Mdst.Streaming.run ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:4
      ~mixers:1 ~storage_limit:0 ~scheduler:Mdst.Scheduler.srs ()
  in
  check bool "flagged infeasible" false r.Mdst.Streaming.within_limit;
  check int "falls back to pairs" 2 (Mdst.Streaming.n_passes r)

let test_max_demand_per_pass () =
  let fit =
    Mdst.Streaming.max_demand_per_pass ~algorithm:Mixtree.Algorithm.MM
      ~ratio:pcr ~mixers:3 ~storage_limit:5 ~scheduler:Mdst.Scheduler.srs
      ~max_demand:32
  in
  (match fit with
  | Some d' -> check bool "D' is even and positive" true (d' mod 2 = 0 && d' > 0)
  | None -> Alcotest.fail "q=5 must fit some demand");
  let none =
    Mdst.Streaming.max_demand_per_pass ~algorithm:Mixtree.Algorithm.MM
      ~ratio:(Bioproto.Protocols.pcr ~d:6) ~mixers:1 ~storage_limit:0
      ~scheduler:Mdst.Scheduler.srs ~max_demand:8
  in
  check bool "impossible budget returns None" true (none = None)

let test_rejects_bad_arguments () =
  check bool "demand 0" true
    (try ignore (run ~q:3 ~demand:0 ()); false with Invalid_argument _ -> true);
  check bool "mixers 0" true
    (try ignore (run ~q:3 ~mixers:0 ()); false with Invalid_argument _ -> true)

let test_scheduler_choice () =
  let srs = run ~q:5 () in
  let mms =
    Mdst.Streaming.run ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand:32
      ~mixers:3 ~storage_limit:5 ~scheduler:Mdst.Scheduler.mms ()
  in
  check bool "MMS streaming no slower in total cycles" true
    (mms.Mdst.Streaming.total_cycles <= srs.Mdst.Streaming.total_cycles + 2)

let prop_streaming_consistent =
  Generators.qtest ~count:80 "streaming totals are consistent"
    QCheck2.Gen.(
      triple Generators.ratio_gen (int_range 2 24) (int_range 1 8))
    (fun (r, d, q) ->
      Printf.sprintf "%s D=%d q=%d" (Dmf.Ratio.to_string r) d q)
    (fun (ratio, demand, storage_limit) ->
      let r =
        Mdst.Streaming.run ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand
          ~mixers:2 ~storage_limit ~scheduler:Mdst.Scheduler.srs ()
      in
      let sum f = List.fold_left (fun acc p -> acc + f p) 0 r.Mdst.Streaming.passes in
      r.Mdst.Streaming.total_cycles = sum (fun p -> p.Mdst.Streaming.tc)
      && r.Mdst.Streaming.total_waste = sum (fun p -> p.Mdst.Streaming.waste)
      && Mdst.Streaming.n_passes r >= 1)

let () =
  Alcotest.run "streaming"
    [
      ( "table4",
        [
          Alcotest.test_case "d=4 q'=3 column" `Quick test_table4_d4_q3;
          Alcotest.test_case "d=4 q'=5, D=16" `Quick test_table4_d4_q5;
        ] );
      ( "engine",
        [
          Alcotest.test_case "budget respected" `Quick test_budget_respected;
          Alcotest.test_case "total demand met" `Quick test_total_demand_met;
          Alcotest.test_case "more storage, fewer passes" `Quick
            test_more_storage_fewer_passes;
          Alcotest.test_case "infeasible budget flagged" `Quick
            test_infeasible_budget_flagged;
          Alcotest.test_case "max demand per pass" `Quick test_max_demand_per_pass;
          Alcotest.test_case "bad arguments rejected" `Quick
            test_rejects_bad_arguments;
          Alcotest.test_case "scheduler choice" `Quick test_scheduler_choice;
        ] );
      ("properties", [ prop_streaming_consistent ]);
    ]
