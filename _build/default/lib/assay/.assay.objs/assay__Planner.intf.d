lib/assay/planner.mli: Demand Dmf Format Mdst Mixtree
