(** The RMA base mixing tree, after Roy et al. [18].

    RMA is the layout-aware solution-preparation algorithm; its trees are
    skewed (a fresh reservoir droplet joins the carried mixture whenever a
    single loading of the right magnitude exists) and consume more input
    droplets than MM: when no single entry covers half of a node, RMA
    splits the largest loading into two smaller ones, spending an extra
    input droplet and an extra mix-split.  This is the property Section 4
    of the DAC'14 paper exploits — "RMA constructs a base mixing tree with
    a larger number of waste droplets compared to other mixing
    algorithms", making it the best seed for the streaming engine.

    Reimplemented from the published description; see DESIGN.md §3. *)

val build : Dmf.Ratio.t -> Tree.t
(** [build r] is the RMA mixing tree for [r]; exact-target semantics are
    guaranteed, with [leaf_count] at least that of the MM tree. *)
