(** Electrode-grid geometry. *)

type point = { x : int; y : int }
(** A grid cell; [x] is the column, [y] the row, both 0-based. *)

val manhattan : point -> point -> int

val chebyshev : point -> point -> int
(** The 8-neighbourhood distance; DMF fluidic constraints forbid two
    unrelated droplets within Chebyshev distance 1 of each other. *)

val neighbours4 : point -> point list
(** The 4-neighbourhood, the cells a droplet can step to. *)

type rect = { x : int; y : int; w : int; h : int }
(** An axis-aligned block of electrodes. *)

val rect_cells : rect -> point list
val rect_contains : rect -> point -> bool
val rect_overlap : rect -> rect -> bool
val rect_center : rect -> point
val rect_expand : rect -> by:int -> rect
(** Grow a rectangle by [by] cells on every side (segregation ring). *)

val pp_point : Format.formatter -> point -> unit
