(* lib/cluster: the consistent-hash ring, the deterministic stats
   merge, and the routing proxy end-to-end (live shard + dead shard
   behind one in-process router). *)

let geti name json =
  match Option.bind (Service.Jsonl.member name json) Service.Jsonl.to_int with
  | Some v -> v
  | None -> Alcotest.failf "missing int field %S" name

let getb name json =
  match Option.bind (Service.Jsonl.member name json) Service.Jsonl.to_bool with
  | Some v -> v
  | None -> Alcotest.failf "missing bool field %S" name

let gets name json =
  match Option.bind (Service.Jsonl.member name json) Service.Jsonl.to_str with
  | Some v -> v
  | None -> Alcotest.failf "missing string field %S" name

(* ------------------------------------------------------------------ *)
(* Request keys across re-encoding                                     *)

(* Sharding is only sound if the key is stable across the wire: a
   request re-encoded by any hop must land on the same shard.  The
   property drives a random spec through to_json -> to_string ->
   of_string -> of_json and demands identical coalesce and cache
   keys. *)
let spec_gen =
  let open QCheck2.Gen in
  Generators.ratio_gen >>= fun ratio ->
  Generators.demand_gen >>= fun demand ->
  Generators.algorithm_gen >>= fun algorithm ->
  oneofl (Mdst.Scheduler.all ()) >>= fun scheduler ->
  opt (int_range 1 8) >>= fun mixers ->
  opt (int_range 0 16) >|= fun storage_limit ->
  { Service.Request.ratio; demand; algorithm; scheduler; mixers; storage_limit }

let spec_print spec = Service.Request.cache_key spec

let key_stability =
  Generators.qtest "coalesce/cache key stable across re-encoding" spec_gen
    spec_print (fun spec ->
      let request =
        { Service.Request.id = None; kind = Service.Request.Prepare spec }
      in
      let line = Service.Jsonl.to_string (Service.Request.to_json request) in
      match Service.Request.of_line line with
      | Ok { Service.Request.kind = Service.Request.Prepare spec'; _ } ->
        String.equal
          (Service.Request.coalesce_key spec)
          (Service.Request.coalesce_key spec')
        && String.equal
             (Service.Request.cache_key spec)
             (Service.Request.cache_key spec')
      | Ok _ -> QCheck2.Test.fail_report "re-decoded as a non-prepare request"
      | Error msg -> QCheck2.Test.fail_report msg)

(* ------------------------------------------------------------------ *)
(* Ring balance and remap                                              *)

let keys n = List.init n (Printf.sprintf "ratio-%d|MM|SRS|Mc=auto|q'=-")

let shard_labels n = List.init n (Printf.sprintf "10.0.0.%d:7433")

let counts ring key_list =
  let c = Array.make (Cluster.Ring.shards ring) 0 in
  List.iter
    (fun k ->
      let i = Cluster.Ring.lookup ring k in
      c.(i) <- c.(i) + 1)
    key_list;
  c

let balance () =
  let shards = 8 and n = 4000 in
  let ring = Cluster.Ring.create (shard_labels shards) in
  let fair = float_of_int n /. float_of_int shards in
  Array.iteri
    (fun i c ->
      let load = float_of_int c /. fair in
      if load < 0.5 || load > 1.7 then
        Alcotest.failf "shard %d holds %.2fx its fair share" i load)
    (counts ring (keys n))

(* Adding a shard may only move keys onto the new shard, and only about
   1/(N+1) of them; everything else keeps its owner.  (Ownership is
   compared by label: indices shift with list order, labels cannot.) *)
let remap_add () =
  let before = shard_labels 5 in
  let added = "10.0.0.99:7433" in
  let ring5 = Cluster.Ring.create before in
  let ring6 = Cluster.Ring.create (before @ [ added ]) in
  let n = 4000 in
  let moved =
    List.fold_left
      (fun moved k ->
        let old_label = Cluster.Ring.label ring5 (Cluster.Ring.lookup ring5 k) in
        let new_label = Cluster.Ring.label ring6 (Cluster.Ring.lookup ring6 k) in
        if String.equal old_label new_label then moved
        else begin
          Alcotest.(check string)
            (Printf.sprintf "moved key %s lands on the added shard" k)
            added new_label;
          moved + 1
        end)
      0 (keys n)
  in
  let fraction = float_of_int moved /. float_of_int n in
  let expected = 1. /. 6. in
  if fraction < 0.5 *. expected || fraction > 2. *. expected then
    Alcotest.failf "add remapped %.3f of keys (expected about %.3f)" fraction
      expected

let remap_remove () =
  let survivors = shard_labels 5 in
  let removed = "10.0.0.99:7433" in
  let ring6 = Cluster.Ring.create (survivors @ [ removed ]) in
  let ring5 = Cluster.Ring.create survivors in
  let n = 4000 in
  let moved =
    List.fold_left
      (fun moved k ->
        let old_label = Cluster.Ring.label ring6 (Cluster.Ring.lookup ring6 k) in
        let new_label = Cluster.Ring.label ring5 (Cluster.Ring.lookup ring5 k) in
        if String.equal old_label removed then moved + 1
        else begin
          (* A key a survivor owned must not move at all. *)
          Alcotest.(check string)
            (Printf.sprintf "key %s keeps its surviving owner" k)
            old_label new_label;
          moved
        end)
      0 (keys n)
  in
  let fraction = float_of_int moved /. float_of_int n in
  let expected = 1. /. 6. in
  if fraction < 0.5 *. expected || fraction > 2. *. expected then
    Alcotest.failf "remove freed %.3f of keys (expected about %.3f)" fraction
      expected

let deterministic () =
  let labels = shard_labels 4 in
  let a = Cluster.Ring.create labels in
  let b = Cluster.Ring.create labels in
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "same owner for %s" k)
        (Cluster.Ring.lookup a k) (Cluster.Ring.lookup b k))
    (keys 500)

(* ------------------------------------------------------------------ *)
(* Stats merge                                                         *)

let fake_body ~served ~latency ~uptime =
  match
    Service.Jsonl.of_string
      (Printf.sprintf
         {|{"queue_depth": 1, "workers": 2, "served": %d, "errors": 0,
           "coalesced": 3, "jobs": 4, "plans_built": 2,
           "cache": {"hits": 5, "misses": 6, "evictions": 0, "size": 2,
                     "capacity": 64},
           "avg_latency_ms": %f, "uptime_s": %f,
           "wal": {"records": 7}}|}
         served latency uptime)
  with
  | Ok json -> json
  | Error msg -> Alcotest.failf "fake stats body: %s" msg

let client ~addr ~healthy =
  {
    Cluster.Shard_client.addr;
    healthy;
    sent = 10;
    answered = (if healthy then 10 else 7);
    failed = (if healthy then 0 else 3);
    connects = 1;
  }

let merge_stats () =
  let merged =
    Cluster.Stats.merge
      [
        ( ( client ~addr:"a:1" ~healthy:true,
            Some (fake_body ~served:30 ~latency:2.0 ~uptime:5.0) ),
          None );
        ( ( client ~addr:"b:2" ~healthy:true,
            Some (fake_body ~served:10 ~latency:6.0 ~uptime:9.0) ),
          None );
        ((client ~addr:"c:3" ~healthy:false, None), None);
      ]
  in
  Alcotest.(check int) "served summed" 40 (geti "served" merged);
  Alcotest.(check int) "workers summed" 4 (geti "workers" merged);
  Alcotest.(check int) "plans summed" 4 (geti "plans_built" merged);
  (match Service.Jsonl.member "cache" merged with
  | Some cache -> Alcotest.(check int) "cache hits summed" 10 (geti "hits" cache)
  | None -> Alcotest.fail "merged stats lacks cache");
  (* 30 requests at 2 ms and 10 at 6 ms average to 3 ms. *)
  (match
     Option.bind (Service.Jsonl.member "avg_latency_ms" merged)
       Service.Jsonl.to_float
   with
  | Some avg -> Alcotest.(check (float 1e-9)) "latency weighted" 3.0 avg
  | None -> Alcotest.fail "merged stats lacks avg_latency_ms");
  (match
     Option.bind (Service.Jsonl.member "uptime_s" merged) Service.Jsonl.to_float
   with
  | Some up -> Alcotest.(check (float 1e-9)) "uptime is the oldest" 9.0 up
  | None -> Alcotest.fail "merged stats lacks uptime_s");
  (match Service.Jsonl.member "cluster" merged with
  | Some c ->
    Alcotest.(check int) "shard count" 3 (geti "shards" c);
    Alcotest.(check int) "healthy count" 2 (geti "healthy" c)
  | None -> Alcotest.fail "merged stats lacks cluster object");
  match
    Option.bind (Service.Jsonl.member "shards" merged) Service.Jsonl.to_list
  with
  | Some [ a; b; c ] ->
    Alcotest.(check string) "ring order preserved" "a:1" (gets "addr" a);
    (match Service.Jsonl.member "wal" a with
    | Some w -> Alcotest.(check int) "wal nested verbatim" 7 (geti "records" w)
    | None -> Alcotest.fail "healthy shard entry lacks wal");
    Alcotest.(check bool) "second healthy" true (getb "healthy" b);
    Alcotest.(check bool) "dead shard unhealthy" false (getb "healthy" c);
    Alcotest.(check int) "dead shard failures" 3 (geti "failed" c);
    Alcotest.(check bool) "dead shard carries no counters" true
      (Service.Jsonl.member "served" c = None)
  | Some l -> Alcotest.failf "expected 3 shard entries, got %d" (List.length l)
  | None -> Alcotest.fail "merged stats lacks shards array"

let merge_empty () =
  let merged =
    Cluster.Stats.merge [ ((client ~addr:"a:1" ~healthy:false, None), None) ]
  in
  Alcotest.(check int) "all counters zero" 0 (geti "served" merged);
  match Service.Jsonl.member "cluster" merged with
  | Some c -> Alcotest.(check int) "nothing healthy" 0 (geti "healthy" c)
  | None -> Alcotest.fail "merged stats lacks cluster object"

(* A shard with a hot standby: the follower's counters join the sums,
   its entry nests under the shard's [follower] member, and the
   top-level [replication] summary carries role census and worst lag. *)
let follower_body ~lag_records ~lag_ms =
  match
    Service.Jsonl.of_string
      (Printf.sprintf
         {|{"queue_depth": 0, "workers": 0, "served": 5, "errors": 0,
           "coalesced": 0, "jobs": 0, "plans_built": 1,
           "cache": {"hits": 5, "misses": 0, "evictions": 0, "size": 2,
                     "capacity": 64},
           "avg_latency_ms": 1.0, "uptime_s": 2.0,
           "wal": {"records": 7},
           "replication": {"role": "follower", "last_applied_seq": 7,
                           "lag_records": %d, "lag_ms": %f}}|}
         lag_records lag_ms)
  with
  | Ok json -> json
  | Error msg -> Alcotest.failf "fake follower body: %s" msg

let merge_follower () =
  let merged =
    Cluster.Stats.merge
      [
        ( ( client ~addr:"a:1" ~healthy:true,
            Some (fake_body ~served:30 ~latency:2.0 ~uptime:5.0) ),
          Some
            ( client ~addr:"a:2" ~healthy:true,
              Some (follower_body ~lag_records:3 ~lag_ms:12.5) ) );
        ((client ~addr:"b:3" ~healthy:false, None), None);
      ]
  in
  Alcotest.(check int)
    "served sums primary and follower" 35 (geti "served" merged);
  (match Service.Jsonl.member "cluster" merged with
  | Some c ->
    Alcotest.(check int) "shard count excludes followers" 2 (geti "shards" c);
    Alcotest.(check int) "one follower registered" 1 (geti "followers" c);
    Alcotest.(check int) "follower healthy" 1 (geti "followers_healthy" c)
  | None -> Alcotest.fail "merged stats lacks cluster object");
  (match Service.Jsonl.member "replication" merged with
  | Some r ->
    Alcotest.(check int) "one follower role" 1 (geti "followers" r);
    Alcotest.(check int) "worst lag in records" 3 (geti "max_lag_records" r)
  | None -> Alcotest.fail "merged stats lacks replication summary");
  match
    Option.bind (Service.Jsonl.member "shards" merged) Service.Jsonl.to_list
  with
  | Some [ a; _b ] -> (
    match Service.Jsonl.member "follower" a with
    | Some f ->
      Alcotest.(check string) "follower addr nested" "a:2" (gets "addr" f);
      (match Service.Jsonl.member "replication" f with
      | Some r ->
        Alcotest.(check string) "role verbatim" "follower" (gets "role" r)
      | None -> Alcotest.fail "follower entry lacks replication object")
    | None -> Alcotest.fail "shard entry lacks follower member")
  | _ -> Alcotest.fail "merged stats lacks the two shard entries"

(* ------------------------------------------------------------------ *)
(* Router end-to-end: one live shard, one dead                         *)

(* A port that refuses connections: bind, read the port back, close. *)
let refused_port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Unix.close sock;
  port

(* Start a real daemon core on an ephemeral TCP port; hand back the
   port once the listener is live.  The accept loop runs on a thread
   that dies with the test process; the worker domains are joined by
   [Service.Server.stop]. *)
let start_live_shard () =
  let server = Service.Server.create ~workers:1 () in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let port = ref 0 in
  ignore
    (Thread.create
       (fun () ->
         try
           Service.Server.serve_tcp server
             ~on_listen:(fun bound ->
               Mutex.lock m;
               port := bound;
               Condition.signal cv;
               Mutex.unlock m)
             ~host:"127.0.0.1" ~port:0
         with _ -> ())
       ());
  Mutex.lock m;
  while !port = 0 do
    Condition.wait cv m
  done;
  let bound = !port in
  Mutex.unlock m;
  (server, bound)

let spec_of_ratio ratio =
  {
    Service.Request.ratio;
    demand = 8;
    algorithm = Mixtree.Algorithm.MM;
    scheduler = Mdst.Scheduler.srs;
    mixers = None;
    storage_limit = None;
  }

(* One ratio owned by each shard, found through the router's own
   placement function — the same arithmetic the proxy path uses. *)
let ratios_per_shard router =
  let owned = Array.make 2 None in
  List.iter
    (fun ratio ->
      let idx, _ = Cluster.Router.route router (spec_of_ratio ratio) in
      if owned.(idx) = None then owned.(idx) <- Some ratio)
    (Lazy.force Generators.corpus_slice);
  match (owned.(0), owned.(1)) with
  | Some a, Some b -> (a, b)
  | _ -> Alcotest.fail "corpus slice never hit one of the two shards"

let router_end_to_end () =
  let server, live_port = start_live_shard () in
  let dead_port = refused_port () in
  let router =
    Cluster.Router.create ~retries:1 ~backoff_ms:5. ~cooldown_ms:100.
      [
        (("127.0.0.1", live_port), None);
        (("127.0.0.1", dead_port), None);
      ]
  in
  let live_ratio, dead_ratio = ratios_per_shard router in
  let req_read, req_write = Unix.pipe () in
  let resp_read, resp_write = Unix.pipe () in
  let proxy =
    Thread.create
      (fun () ->
        Cluster.Router.serve_channels router
          (Unix.in_channel_of_descr req_read)
          (Unix.out_channel_of_descr resp_write))
      ()
  in
  let oc = Unix.out_channel_of_descr req_write in
  let ic = Unix.in_channel_of_descr resp_read in
  let prepare id ratio =
    Printf.sprintf {|{"req": "prepare", "ratio": "%s", "D": 8, "id": %d}|}
      (Dmf.Ratio.to_string ratio)
      id
  in
  (* Interleave live and dead shards, finish with ping and stats: the
     response stream must come back in exactly this order. *)
  let lines =
    [
      prepare 1 live_ratio;
      prepare 2 dead_ratio;
      prepare 3 live_ratio;
      prepare 4 dead_ratio;
      {|{"req": "ping", "id": 5}|};
      {|{"req": "stats", "id": 6}|};
    ]
  in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    lines;
  flush oc;
  let responses =
    List.map
      (fun _ ->
        match Service.Jsonl.of_string (input_line ic) with
        | Ok json -> json
        | Error msg -> Alcotest.failf "bad response line: %s" msg)
      lines
  in
  Alcotest.(check (list int))
    "responses in request order" [ 1; 2; 3; 4; 5; 6 ]
    (List.map (geti "id") responses);
  (match responses with
  | [ live1; dead1; live2; dead2; pong; stats ] ->
    Alcotest.(check bool) "live shard answers" true (getb "ok" live1);
    Alcotest.(check bool) "live shard answers again" true (getb "ok" live2);
    Alcotest.(check bool) "second hit is a cache hit" true
      (getb "cache_hit" live2);
    Alcotest.(check bool) "dead shard errors, not hangs" false
      (getb "ok" dead1);
    Alcotest.(check bool) "dead shard still errors" false (getb "ok" dead2);
    Alcotest.(check bool) "ping answered locally" true (getb "ok" pong);
    Alcotest.(check bool) "merged stats ok" true (getb "ok" stats);
    Alcotest.(check int) "live shard served both prepares" 2
      (geti "served" stats);
    (match Service.Jsonl.member "cluster" stats with
    | Some c ->
      Alcotest.(check int) "two shards" 2 (geti "shards" c);
      Alcotest.(check int) "one healthy" 1 (geti "healthy" c)
    | None -> Alcotest.fail "merged stats lacks cluster object");
    (match
       Option.bind (Service.Jsonl.member "shards" stats) Service.Jsonl.to_list
     with
    | Some [ s0; s1 ] ->
      Alcotest.(check bool) "shard 0 healthy" true (getb "healthy" s0);
      Alcotest.(check bool) "shard 1 dead" false (getb "healthy" s1)
    | _ -> Alcotest.fail "merged stats lacks the two shard entries")
  | _ -> Alcotest.fail "wrong response count");
  (* The route diagnostic agrees with where the requests actually went. *)
  output_string oc
    (Printf.sprintf {|{"req": "route", "ratio": "%s", "D": 8, "id": 7}|}
       (Dmf.Ratio.to_string live_ratio));
  output_char oc '\n';
  flush oc;
  (match Service.Jsonl.of_string (input_line ic) with
  | Ok json ->
    Alcotest.(check int) "route echoes id" 7 (geti "id" json);
    Alcotest.(check int) "live ratio owned by shard 0" 0 (geti "shard" json);
    Alcotest.(check string)
      "route reports the coalesce key"
      (Service.Request.coalesce_key (spec_of_ratio live_ratio))
      (gets "key" json)
  | Error msg -> Alcotest.failf "bad route response: %s" msg);
  close_out oc;
  Thread.join proxy;
  Unix.close resp_read;
  Cluster.Router.close router;
  Service.Server.stop server

(* Failover: the shard's primary endpoint refuses connections, its
   follower is a live daemon.  Forwarded requests must fall through to
   the follower (answered, not error lines), and the merged stats must
   show the primary dead but the follower healthy. *)
let router_failover () =
  let server, live_port = start_live_shard () in
  let dead_port = refused_port () in
  let router =
    Cluster.Router.create ~retries:1 ~backoff_ms:5. ~cooldown_ms:100.
      [ (("127.0.0.1", dead_port), Some ("127.0.0.1", live_port)) ]
  in
  Alcotest.(check int) "one follower" 1 (Cluster.Router.followers router);
  let req_read, req_write = Unix.pipe () in
  let resp_read, resp_write = Unix.pipe () in
  let proxy =
    Thread.create
      (fun () ->
        Cluster.Router.serve_channels router
          (Unix.in_channel_of_descr req_read)
          (Unix.out_channel_of_descr resp_write))
      ()
  in
  let oc = Unix.out_channel_of_descr req_write in
  let ic = Unix.in_channel_of_descr resp_read in
  let ratio = List.hd (Lazy.force Generators.corpus_slice) in
  let lines =
    [
      Printf.sprintf {|{"req": "prepare", "ratio": "%s", "D": 8, "id": 1}|}
        (Dmf.Ratio.to_string ratio);
      Printf.sprintf {|{"req": "prepare", "ratio": "%s", "D": 8, "id": 2}|}
        (Dmf.Ratio.to_string ratio);
      {|{"req": "stats", "id": 3}|};
    ]
  in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    lines;
  flush oc;
  let responses =
    List.map
      (fun _ ->
        match Service.Jsonl.of_string (input_line ic) with
        | Ok json -> json
        | Error msg -> Alcotest.failf "bad response line: %s" msg)
      lines
  in
  (match responses with
  | [ first; second; stats ] ->
    Alcotest.(check bool) "failover answers the prepare" true
      (getb "ok" first);
    Alcotest.(check bool) "failover answers again" true (getb "ok" second);
    Alcotest.(check bool) "second hit is a cache hit" true
      (getb "cache_hit" second);
    Alcotest.(check bool) "merged stats ok" true (getb "ok" stats);
    (match Service.Jsonl.member "cluster" stats with
    | Some c ->
      Alcotest.(check int) "primary dead" 0 (geti "healthy" c);
      Alcotest.(check int) "follower healthy" 1 (geti "followers_healthy" c)
    | None -> Alcotest.fail "merged stats lacks cluster object");
    Alcotest.(check int) "follower served the prepares" 2
      (geti "served" stats)
  | _ -> Alcotest.fail "wrong response count");
  close_out oc;
  Thread.join proxy;
  Unix.close resp_read;
  Cluster.Router.close router;
  Service.Server.stop server

let () =
  Alcotest.run "cluster"
    [
      ( "ring",
        [
          key_stability;
          Alcotest.test_case "balance within tolerance" `Quick balance;
          Alcotest.test_case "add remaps only onto the new shard" `Quick
            remap_add;
          Alcotest.test_case "remove moves only the removed shard's keys"
            `Quick remap_remove;
          Alcotest.test_case "placement is deterministic" `Quick deterministic;
        ] );
      ( "stats",
        [
          Alcotest.test_case "merge sums, weights and nests" `Quick merge_stats;
          Alcotest.test_case "merge of nothing is all zeros" `Quick merge_empty;
          Alcotest.test_case "follower probes sum and nest" `Quick
            merge_follower;
        ] );
      ( "router",
        [
          Alcotest.test_case "live + dead shard end-to-end" `Quick
            router_end_to_end;
          Alcotest.test_case "dead primary fails over to its follower" `Quick
            router_failover;
        ] );
    ]
