test/test_contamination.mli:
