(** Optimal scheduling of a single mixing tree (OMS [13]).

    All (1:1) mix-split operations are identical unit-time tasks and a
    mixing tree is an in-tree precedence graph, so Hu's level algorithm
    (highest level first) yields a provably minimum-makespan schedule on
    [Mc] identical mixers — the same optimum as the optimal mix scheduling
    (OMS) of Luo and Akella used by the paper to schedule base trees and
    the repeated baselines. *)

type slot = { cycle : int; mixer : int }
(** Mixer assignment of one mix-split step; cycles and mixers are numbered
    from 1. *)

val completion_time : Tree.t -> mixers:int -> int
(** [completion_time t ~mixers] is the optimal number of time-cycles [tc]
    needed to execute every mix-split of [t] with [mixers] on-chip mixers.
    A bare leaf takes 0 cycles.  @raise Invalid_argument if
    [mixers < 1]. *)

val schedule : Tree.t -> mixers:int -> slot list
(** [schedule t ~mixers] is the per-node assignment in breadth-first
    order of the internal nodes of [t] (root first). *)

val min_mixers_for_fastest : Tree.t -> int
(** [min_mixers_for_fastest t] is the paper's [Mlb]: the smallest number
    of mixers for which the tree still completes in [depth t] cycles
    (the critical-path optimum).  A bare leaf needs 1 mixer by
    convention. *)
