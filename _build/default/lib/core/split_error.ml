(* Conservative interval propagation.  Every droplet carries a volume
   interval (relative to the unit droplet) and one CF interval per fluid;
   both daughters of a split get the pessimistic volume interval (either
   one could be the heavy daughter), so the bounds are worst-case sound
   but not tight. *)

type report = {
  epsilon : float;
  max_cf_error : float;
  mean_cf_error : float;
  per_root : (int * float) list;
  worst_volume_skew : float;
}

type interval = { lo : float; hi : float }

type droplet_state = { volume : interval; cfs : interval array }

let exact x = { lo = x; hi = x }

let mix_states a b =
  let volume = { lo = a.volume.lo +. b.volume.lo; hi = a.volume.hi +. b.volume.hi } in
  (* Weight of operand A in the merged droplet. *)
  let w_lo = a.volume.lo /. (a.volume.lo +. b.volume.hi) in
  let w_hi = a.volume.hi /. (a.volume.hi +. b.volume.lo) in
  let blend w ca cb = (w *. ca) +. ((1. -. w) *. cb) in
  let cfs =
    Array.map2
      (fun ca cb ->
        let candidates =
          [
            blend w_lo ca.lo cb.lo; blend w_hi ca.lo cb.lo;
            blend w_lo ca.hi cb.hi; blend w_hi ca.hi cb.hi;
          ]
        in
        {
          lo = List.fold_left min (blend w_lo ca.lo cb.lo) candidates;
          hi = List.fold_left max (blend w_lo ca.hi cb.hi) candidates;
        })
      a.cfs b.cfs
  in
  { volume; cfs }

let split_state ~epsilon merged =
  {
    merged with
    volume =
      {
        lo = merged.volume.lo *. (1. -. epsilon) /. 2.;
        hi = merged.volume.hi *. (1. +. epsilon) /. 2.;
      };
  }

let analyze ~plan ~epsilon =
  if not (epsilon >= 0. && epsilon < 0.5) then
    invalid_arg "Split_error.analyze: epsilon must be in [0, 0.5)";
  let n = Dmf.Ratio.n_fluids (Plan.ratio plan) in
  let states = Array.make (Plan.n_nodes plan) None in
  let state_of_source = function
    | Plan.Input f ->
      let cfs =
        Array.init n (fun i ->
            if i = Dmf.Fluid.index f then exact 1. else exact 0.)
      in
      { volume = exact 1.; cfs }
    | Plan.Output { node; port = _ } -> (
      match states.(node) with
      | Some s -> s
      | None -> assert false (* plans are topologically ordered *))
    | Plan.Reserve i ->
      (* A salvaged droplet re-enters with its nominal CF vector and an
         unknown history; assume the unit volume of a fresh droplet — the
         analysis is about the recovery plan's own splits. *)
      let v = (Plan.reserves plan).(i) in
      let scale = float_of_int (Dmf.Binary.pow2 (Dmf.Mixture.scale v)) in
      {
        volume = exact 1.;
        cfs =
          Array.map
            (fun a -> exact (float_of_int a /. scale))
            (Dmf.Mixture.numerators v);
      }
  in
  let worst_skew = ref 0. in
  List.iter
    (fun node ->
      let merged =
        mix_states (state_of_source node.Plan.left)
          (state_of_source node.Plan.right)
      in
      let daughter = split_state ~epsilon merged in
      worst_skew :=
        max !worst_skew
          (max (abs_float (daughter.volume.hi -. 1.))
             (abs_float (daughter.volume.lo -. 1.)));
      states.(node.Plan.id) <- Some daughter)
    (Plan.nodes plan);
  let target = Dmf.Mixture.of_ratio (Plan.ratio plan) in
  let scale = float_of_int (Dmf.Binary.pow2 (Dmf.Mixture.scale target)) in
  let exact_cfs =
    Array.map (fun a -> float_of_int a /. scale) (Dmf.Mixture.numerators target)
  in
  let root_error r =
    match states.(r) with
    | None -> assert false
    | Some s ->
      let worst = ref 0. in
      Array.iteri
        (fun i cf ->
          worst :=
            max !worst
              (max (abs_float (cf.hi -. exact_cfs.(i)))
                 (abs_float (cf.lo -. exact_cfs.(i)))))
        s.cfs;
      !worst
  in
  let per_root = List.map (fun r -> (r, root_error r)) (Plan.roots plan) in
  let errors = List.map snd per_root in
  {
    epsilon;
    max_cf_error = List.fold_left max 0. errors;
    mean_cf_error =
      (match errors with
      | [] -> 0.
      | _ ->
        List.fold_left ( +. ) 0. errors /. float_of_int (List.length errors));
    per_root;
    worst_volume_skew = !worst_skew;
  }

let max_cf_error ~plan ~epsilon = (analyze ~plan ~epsilon).max_cf_error
