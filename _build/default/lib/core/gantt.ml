let label node =
  let i = node.Plan.tree and j = node.Plan.bfs in
  if i <= 9 && j <= 9 then Printf.sprintf "m%d%d" i j
  else Printf.sprintf "m%d,%d" i j

let render ~plan s =
  let tc = Schedule.completion_time s in
  let mixers = Schedule.mixers s in
  (* cell.(m - 1).(t - 1) is the label of the node on mixer m at cycle t. *)
  let cell = Array.make_matrix mixers tc "." in
  List.iter
    (fun node ->
      let id = node.Plan.id in
      let t = Schedule.cycle s id and m = Schedule.mixer s id in
      cell.(m - 1).(t - 1) <- label node)
    (Plan.nodes plan);
  let width =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun acc c -> max acc (String.length c)) acc row)
      2 cell
  in
  let pad str = Printf.sprintf "%-*s" width str in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (pad "t");
  for t = 1 to tc do
    Buffer.add_string buffer (" " ^ pad (string_of_int t))
  done;
  Buffer.add_char buffer '\n';
  for m = 1 to mixers do
    Buffer.add_string buffer (pad (Printf.sprintf "M%d" m));
    for t = 1 to tc do
      Buffer.add_string buffer (" " ^ pad cell.(m - 1).(t - 1))
    done;
    Buffer.add_char buffer '\n'
  done;
  let occupancy = Storage.profile ~plan s in
  Buffer.add_string buffer (pad "st");
  Array.iter
    (fun o -> Buffer.add_string buffer (" " ^ pad (string_of_int o)))
    occupancy;
  Buffer.add_char buffer '\n';
  let emissions = Schedule.emission_order ~plan s in
  Buffer.add_string buffer
    (Printf.sprintf "Tc = %d time-cycles, q = %d, targets emitted at cycles: %s\n"
       tc
       (Storage.units ~plan s)
       (String.concat ", "
          (List.map (fun (t, _) -> string_of_int t) emissions)));
  Buffer.contents buffer

let pp ~plan ppf s = Format.pp_print_string ppf (render ~plan s)
