lib/core/engine.ml: Baseline Dmf Forest Metrics Mixtree Plan Schedule Streaming
