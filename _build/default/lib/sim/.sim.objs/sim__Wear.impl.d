lib/sim/wear.ml: Array Buffer Char Executor Printf
