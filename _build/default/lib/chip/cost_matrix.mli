(** Droplet-transportation cost matrix (the matrix of Figure 5).

    Pairwise shortest-path costs, in electrodes actuated, between every
    pair of modules on an otherwise empty chip.  Used by the actuation
    accounting and by the placer's objective. *)

type t

val build : Layout.t -> t
(** All-pairs costs via BFS routing.  Unreachable pairs are recorded as
    such and raise on lookup. *)

val cost : t -> src:string -> dst:string -> int
(** @raise Invalid_argument on unknown ids or unreachable pairs. *)

val reachable : t -> src:string -> dst:string -> bool

val labels : t -> string list

val render : ?rows:string list -> ?columns:string list -> t -> string
(** A text matrix restricted to the given module ids (all by default) —
    the Figure 5 presentation uses reservoirs, storage and waste rows
    against mixer columns. *)
