(* Tests for the protocol library and the synthetic corpus. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_table2_protocols () =
  let cases =
    [ ("ex1", 7, 256); ("ex2", 3, 256); ("ex3", 10, 256); ("ex4", 5, 256);
      ("ex5", 7, 256) ]
  in
  List.iter
    (fun (id, n, sum) ->
      match Bioproto.Protocols.find id with
      | None -> Alcotest.failf "missing protocol %s" id
      | Some p ->
        check int (id ^ " fluids") n (Dmf.Ratio.n_fluids p.Bioproto.Protocols.ratio);
        check int (id ^ " sum") sum (Dmf.Ratio.sum p.Bioproto.Protocols.ratio))
    cases

let test_find_case_insensitive () =
  check bool "upper-case id" true (Bioproto.Protocols.find "EX1" <> None);
  check bool "unknown id" true (Bioproto.Protocols.find "nope" = None)

let test_pcr_levels () =
  let d4 = Bioproto.Protocols.pcr ~d:4 in
  check Alcotest.string "paper's hand rounding at d=4" "2:1:1:1:1:1:9"
    (Dmf.Ratio.to_string d4);
  List.iter
    (fun d ->
      let r = Bioproto.Protocols.pcr ~d in
      check int (Printf.sprintf "sum at d=%d" d) (Dmf.Binary.pow2 d)
        (Dmf.Ratio.sum r);
      check int (Printf.sprintf "N at d=%d" d) 7 (Dmf.Ratio.n_fluids r))
    [ 4; 5; 6; 7; 8 ]

let test_pcr_error_shrinks () =
  (* Higher accuracy levels approximate the percentages no worse. *)
  let err d =
    Dmf.Ratio.approximation_error (Bioproto.Protocols.pcr ~d)
      Bioproto.Protocols.pcr_percentages
  in
  check bool "d=6 at least as good as d=5" true (err 6 <= err 5 +. 1e-9);
  check bool "d=8 at least as good as d=6" true (err 8 <= err 6 +. 1e-9)

let test_partitions_small () =
  (* Partitions of 5 into 2 parts: 4+1, 3+2. *)
  check int "p(5,2)" 2 (Bioproto.Synth.count_partitions ~sum:5 ~parts:2);
  check int "p(6,3)" 3 (Bioproto.Synth.count_partitions ~sum:6 ~parts:3);
  check int "p(4,4)" 1 (Bioproto.Synth.count_partitions ~sum:4 ~parts:4);
  check int "p(3,4) impossible" 0 (Bioproto.Synth.count_partitions ~sum:3 ~parts:4)

let test_partitions_structure () =
  List.iter
    (fun partition ->
      check int "sums to 32" 32 (List.fold_left ( + ) 0 partition);
      check int "five parts" 5 (List.length partition);
      let sorted_desc = List.sort (fun a b -> Int.compare b a) partition in
      check bool "non-increasing" true (sorted_desc = partition))
    (Bioproto.Synth.partitions ~sum:32 ~parts:5)

let test_corpus () =
  let size = Bioproto.Synth.corpus_size ~sum:32 () in
  (* All partitions of 32 into 2..12 parts; the paper reports a corpus of
     6058 synthetic ratios of the same family. *)
  check int "corpus size" 6289 size;
  let slice = Bioproto.Synth.sample ~every:500 (Bioproto.Synth.corpus ~sum:32 ()) in
  List.iter
    (fun r ->
      check int "ratio-sum 32" 32 (Dmf.Ratio.sum r);
      check bool "2..12 fluids" true
        (Dmf.Ratio.n_fluids r >= 2 && Dmf.Ratio.n_fluids r <= 12))
    slice

let test_corpus_rejects_bad_sum () =
  check bool "non-power sum rejected" true
    (try ignore (Bioproto.Synth.corpus ~sum:33 ()); false
     with Invalid_argument _ -> true)

let test_sample () =
  check int "every 2nd of 5" 3 (List.length (Bioproto.Synth.sample ~every:2 [ 1; 2; 3; 4; 5 ]));
  check bool "bad step rejected" true
    (try ignore (Bioproto.Synth.sample ~every:0 [ 1 ]); false
     with Invalid_argument _ -> true)

let prop_partitions_all_valid_ratios =
  Generators.qtest ~count:30 "every partition forms a valid ratio"
    QCheck2.Gen.(int_range 2 8)
    string_of_int
    (fun parts ->
      List.for_all
        (fun partition ->
          let r = Dmf.Ratio.make (Array.of_list partition) in
          Dmf.Ratio.sum r = 32)
        (Bioproto.Synth.partitions ~sum:32 ~parts))

let () =
  Alcotest.run "bioproto"
    [
      ( "protocols",
        [
          Alcotest.test_case "Table 2 ratios" `Quick test_table2_protocols;
          Alcotest.test_case "find" `Quick test_find_case_insensitive;
          Alcotest.test_case "PCR at all levels" `Quick test_pcr_levels;
          Alcotest.test_case "PCR error shrinks with d" `Quick test_pcr_error_shrinks;
        ] );
      ( "synth",
        [
          Alcotest.test_case "small partition counts" `Quick test_partitions_small;
          Alcotest.test_case "partition structure" `Quick test_partitions_structure;
          Alcotest.test_case "corpus" `Quick test_corpus;
          Alcotest.test_case "corpus rejects bad sum" `Quick test_corpus_rejects_bad_sum;
          Alcotest.test_case "sample" `Quick test_sample;
          prop_partitions_all_valid_ratios;
        ] );
    ]
