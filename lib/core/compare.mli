(** Side-by-side evaluation of preparation schemes (Tables 2 and 3).

    A scheme is either a repeated baseline ([RMM], [RRMA], [RMTCS]) or the
    proposed streaming engine on a base algorithm with MMS or SRS.
    Table 2 evaluates nine schemes per ratio; Table 3 averages the
    percentage improvements over a large synthetic corpus. *)

type scheme =
  | Repeated of Mixtree.Algorithm.t
  | Streamed of Mixtree.Algorithm.t * Scheduler.t

val scheme_name : scheme -> string

val table2_schemes : scheme list
(** The paper's columns A..I: RMM, MM+MMS, MM+SRS, RRMA, RMA+MMS,
    RMA+SRS, RMTCS, MTCS+MMS, MTCS+SRS. *)

val evaluate :
  ?mixers:int -> ratio:Dmf.Ratio.t -> demand:int -> scheme -> Metrics.t
(** [evaluate ~ratio ~demand scheme] runs one scheme; [mixers] defaults to
    [Engine.default_mixers ratio] (the paper's convention: [Mlb] of the
    MM tree). *)

val evaluate_all :
  ?mixers:int ->
  ratio:Dmf.Ratio.t ->
  demand:int ->
  scheme list ->
  (scheme * Metrics.t) list

type improvement = {
  algorithm : Mixtree.Algorithm.t;
  mms_tc_over_repeated : float;
      (** Average % reduction in [Tc] of ALGO+MMS vs R-ALGO. *)
  srs_tc_over_repeated : float;
  mms_i_over_repeated : float;
      (** Average % reduction in [I] of ALGO+MMS vs R-ALGO. *)
  srs_i_over_repeated : float;
  srs_q_over_mms : float;  (** Average % reduction in [q] of SRS vs MMS. *)
  srs_tc_over_mms : float;
      (** Average % change in [Tc] of SRS vs MMS (negative = slower). *)
}

val average_improvements :
  ?mixers:int ->
  ratios:Dmf.Ratio.t list ->
  demand:int ->
  Mixtree.Algorithm.t ->
  improvement
(** Table-3-style aggregate over a ratio corpus for one base algorithm. *)
