lib/core/recovery.ml: Array Dmf Forest List Mixtree Plan Schedule
