lib/viz/gantt_svg.ml: Array Dmf Fun List Mdst Printf Svg
