(** On-chip resources: reservoirs, mixers, storage units, waste
    reservoirs and the output port (the modules of Figure 5). *)

type kind =
  | Reservoir of Dmf.Fluid.t  (** Holds one input fluid at CF 100%. *)
  | Mixer  (** A 2x4 (1:1) mix-split module. *)
  | Storage  (** A single-droplet storage electrode. *)
  | Waste  (** A waste reservoir. *)
  | Output_port  (** Where target droplets are emitted. *)

type t = { id : string; kind : kind; rect : Geometry.rect }

val make : id:string -> kind:kind -> rect:Geometry.rect -> t
(** @raise Invalid_argument if [id] is empty or the rectangle is
    degenerate. *)

val anchor : t -> Geometry.point
(** The cell where a droplet parks inside the module. *)

val kind_name : kind -> string
val glyph : t -> char
(** One-character map symbol: [R], [M], [S], [W], [O]. *)

val pp : Format.formatter -> t -> unit
