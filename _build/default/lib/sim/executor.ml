type stats = {
  cycles : int;
  moves : int;
  electrodes : int;
  dispensed : int;
  emitted : Dmf.Mixture.t list;
  discarded : int;
  violations : int;
  heatmap : int array array;
  addressing : Chip.Pin_assign.requirement list;
      (* actuation requirements, in step order *)
}

type droplet = {
  value : Dmf.Mixture.t;
  mutable cell : Chip.Geometry.point;
  mutable module_id : string;
}

type state = {
  layout : Chip.Layout.t;
  plan : Mdst.Plan.t;
  schedule : Mdst.Schedule.t;
  allocation : Chip.Storage_alloc.t;
  droplets : (int, droplet) Hashtbl.t;
  outputs : (int * int, int) Hashtbl.t;  (* (node, port) -> droplet id *)
  mutable next_id : int;
  mutable events : Trace.event list;  (* reversed *)
  heatmap : int array array;
  mutable requirements : Chip.Pin_assign.requirement list;  (* reversed *)
  mutable step : int;
}

let emit_event state e = state.events <- e :: state.events

(* Two parking cells inside a mixer for the operand / product pair. *)
let mixer_slots m =
  let r = m.Chip.Chip_module.rect in
  let y = r.Chip.Geometry.y + (r.Chip.Geometry.h / 2) in
  let x0 = r.Chip.Geometry.x + (max 0 ((r.Chip.Geometry.w / 2) - 1)) in
  let x1 = min (r.Chip.Geometry.x + r.Chip.Geometry.w - 1) (x0 + 1) in
  ( { Chip.Geometry.x = x0; y },
    { Chip.Geometry.x = x1; y } )

let fresh_droplet state ~value ~cell ~module_id =
  let id = state.next_id in
  state.next_id <- id + 1;
  Hashtbl.replace state.droplets id { value; cell; module_id };
  id

(* Fluidic segregation: no cell of the route may come within Chebyshev
   distance 1 of a droplet parked outside the source and destination
   modules. *)
let segregation_blocked state ~mover ~src_module ~dst_module p =
  Hashtbl.fold
    (fun id d acc ->
      acc
      || id <> mover
         && d.module_id <> src_module
         && d.module_id <> dst_module
         && Chip.Geometry.chebyshev p d.cell <= 1)
    state.droplets false

let move_droplet state ~cycle ~id ~dst_module ~dst_cell =
  let d = Hashtbl.find state.droplets id in
  let allow = [ d.module_id; dst_module ] in
  let blocked =
    segregation_blocked state ~mover:id ~src_module:d.module_id
      ~dst_module
  in
  let strict =
    Chip.Router.route_cells ~blocked state.layout ~allow ~src:d.cell
      ~dst:dst_cell
  in
  let path, segregation_ok =
    match strict with
    | Some path -> (Some path, true)
    | None ->
      ( Chip.Router.route_cells state.layout ~allow ~src:d.cell ~dst:dst_cell,
        false )
  in
  match path with
  | None ->
    Error
      (Printf.sprintf "droplet d%d cannot reach %s from %s" id dst_module
         d.module_id)
  | Some path ->
    let cost = Chip.Router.path_cost path in
    (* Per-step actuation bookkeeping: the heatmap, and the three-valued
       addressing requirements (must-actuate the cell the droplet is
       pulled onto; must-ground the cells around the droplet and around
       every parked droplet, lest a shared pin tear or drag one). *)
    let chebyshev_ring (c : Chip.Geometry.point) =
      List.concat_map
        (fun dy ->
          List.filter_map
            (fun dx ->
              if dx = 0 && dy = 0 then None
              else
                Some
                  { Chip.Geometry.x = c.Chip.Geometry.x + dx;
                    y = c.Chip.Geometry.y + dy })
            [ -1; 0; 1 ])
        [ -1; 0; 1 ]
    in
    let parked_rings =
      Hashtbl.fold
        (fun other parked acc ->
          if other = id then acc else chebyshev_ring parked.cell @ acc)
        state.droplets []
    in
    let rec walk (current : Chip.Geometry.point) = function
      | [] -> ()
      | (next : Chip.Geometry.point) :: rest ->
        state.heatmap.(next.Chip.Geometry.y).(next.Chip.Geometry.x) <-
          state.heatmap.(next.Chip.Geometry.y).(next.Chip.Geometry.x) + 1;
        state.step <- state.step + 1;
        let must_ground =
          List.filter
            (fun p -> p <> next)
            (chebyshev_ring current @ parked_rings)
        in
        state.requirements <-
          { Chip.Pin_assign.step = state.step; must_actuate = [ next ];
            must_ground }
          :: state.requirements;
        walk next rest
    in
    (match path with
    | [] -> ()
    | first :: steps -> walk first steps);
    emit_event state
      (Trace.Move
         { cycle; droplet = id; src = d.module_id; dst = dst_module; path;
           cost; segregation_ok });
    d.cell <- dst_cell;
    d.module_id <- dst_module;
    Ok ()

let remove_droplet state id = Hashtbl.remove state.droplets id

let mixer_module state k = List.nth (Chip.Layout.mixers state.layout) (k - 1)

let nearest_waste state mixer =
  let wastes = Chip.Layout.wastes state.layout in
  let dist w =
    Option.value ~default:max_int
      (Chip.Router.distance state.layout ~src:mixer.Chip.Chip_module.id
         ~dst:w.Chip.Chip_module.id)
  in
  match
    List.sort (fun a b -> Int.compare (dist a) (dist b)) wastes
  with
  | w :: _ -> Some w
  | [] -> None

let ( let* ) = Result.bind

(* Evacuation: droplets produced at cycle [t - 1] that are not consumed at
   cycle [t] leave their mixer for storage, waste or the output port. *)
let evacuate state ~t node =
  let id = node.Mdst.Plan.id in
  let rec each_port = function
    | [] -> Ok ()
    | port :: rest ->
      let droplet = Hashtbl.find state.outputs (id, port) in
      let* () =
        match Mdst.Plan.consumer state.plan ~node:id ~port with
        | Some c when Mdst.Schedule.cycle state.schedule c = t ->
          Ok () (* fetched directly during staging *)
        | Some _ -> (
          match
            Chip.Storage_alloc.unit_for state.allocation ~producer:id ~port
          with
          | None ->
            Error
              (Printf.sprintf "no storage unit assigned to droplet (%d,%d)" id
                 port)
          | Some unit_id ->
            let unit_module = Chip.Layout.find_exn state.layout unit_id in
            move_droplet state ~cycle:t ~id:droplet ~dst_module:unit_id
              ~dst_cell:(Chip.Chip_module.anchor unit_module))
        | None ->
          if Mdst.Plan.is_root state.plan id then begin
            let out = Chip.Layout.output state.layout in
            let* () =
              move_droplet state ~cycle:t ~id:droplet
                ~dst_module:out.Chip.Chip_module.id
                ~dst_cell:(Chip.Chip_module.anchor out)
            in
            let d = Hashtbl.find state.droplets droplet in
            emit_event state
              (Trace.Emit { cycle = t; droplet; value = d.value });
            remove_droplet state droplet;
            Ok ()
          end
          else begin
            let mixer =
              mixer_module state (Mdst.Schedule.mixer state.schedule id)
            in
            match nearest_waste state mixer with
            | None -> Error "layout has no waste reservoir"
            | Some w ->
              let* () =
                move_droplet state ~cycle:t ~id:droplet
                  ~dst_module:w.Chip.Chip_module.id
                  ~dst_cell:(Chip.Chip_module.anchor w)
              in
              emit_event state
                (Trace.Discard
                   { cycle = t; droplet; waste = w.Chip.Chip_module.id });
              remove_droplet state droplet;
              Ok ()
          end
      in
      each_port rest
  in
  each_port [ 0; 1 ]

(* Staging: bring the two operand droplets of a node to its mixer. *)
let stage state ~t node =
  let mixer = mixer_module state (Mdst.Schedule.mixer state.schedule node.Mdst.Plan.id) in
  let slot0, slot1 = mixer_slots mixer in
  let fetch source slot =
    match source with
    | Mdst.Plan.Reserve _ ->
      Error
        "plans with reserve droplets are not supported by the simulator"
    | Mdst.Plan.Input f ->
      let reservoir =
        try Ok (Chip.Layout.reservoir_for state.layout f)
        with Not_found ->
          Error
            (Printf.sprintf "layout has no reservoir for %s"
               (Dmf.Fluid.default_name f))
      in
      let* reservoir in
      let value = Dmf.Mixture.pure ~n:(Dmf.Ratio.n_fluids (Mdst.Plan.ratio state.plan)) f in
      let droplet =
        fresh_droplet state ~value
          ~cell:(Chip.Chip_module.anchor reservoir)
          ~module_id:reservoir.Chip.Chip_module.id
      in
      emit_event state
        (Trace.Dispense
           { cycle = t; droplet; fluid = f;
             reservoir = reservoir.Chip.Chip_module.id });
      let* () =
        move_droplet state ~cycle:t ~id:droplet
          ~dst_module:mixer.Chip.Chip_module.id ~dst_cell:slot
      in
      Ok droplet
    | Mdst.Plan.Output { node = producer; port } ->
      let droplet = Hashtbl.find state.outputs (producer, port) in
      let* () =
        move_droplet state ~cycle:t ~id:droplet
          ~dst_module:mixer.Chip.Chip_module.id ~dst_cell:slot
      in
      Ok droplet
  in
  let* left = fetch node.Mdst.Plan.left slot0 in
  let* right = fetch node.Mdst.Plan.right slot1 in
  Ok (left, right)

(* Mixing: merge the two operands, mix, split into the two products. *)
let mix state ~t node (left, right) =
  let id = node.Mdst.Plan.id in
  let mixer = mixer_module state (Mdst.Schedule.mixer state.schedule id) in
  let slot0, slot1 = mixer_slots mixer in
  let dl = Hashtbl.find state.droplets left in
  let dr = Hashtbl.find state.droplets right in
  let mixed = Dmf.Mixture.mix dl.value dr.value in
  if not (Dmf.Mixture.equal mixed node.Mdst.Plan.value) then
    Error
      (Printf.sprintf "node %d mixed %s, plan expects %s" id
         (Dmf.Mixture.to_string mixed)
         (Dmf.Mixture.to_string node.Mdst.Plan.value))
  else begin
    remove_droplet state left;
    remove_droplet state right;
    let p0 =
      fresh_droplet state ~value:mixed ~cell:slot0
        ~module_id:mixer.Chip.Chip_module.id
    in
    let p1 =
      fresh_droplet state ~value:mixed ~cell:slot1
        ~module_id:mixer.Chip.Chip_module.id
    in
    Hashtbl.replace state.outputs (id, 0) p0;
    Hashtbl.replace state.outputs (id, 1) p1;
    emit_event state
      (Trace.Mix
         { cycle = t; node = id; mixer = mixer.Chip.Chip_module.id;
           value = mixed; operands = (left, right); products = (p0, p1) });
    Ok ()
  end

let run ~layout ~plan ~schedule =
  let mixers = Chip.Layout.mixers layout in
  let* () =
    if List.length mixers >= Mdst.Schedule.mixers schedule then Ok ()
    else
      Error
        (Printf.sprintf "layout has %d mixers, schedule needs %d"
           (List.length mixers)
           (Mdst.Schedule.mixers schedule))
  in
  let storage_ids =
    List.map (fun m -> m.Chip.Chip_module.id) (Chip.Layout.storage_units layout)
  in
  let* allocation =
    Chip.Storage_alloc.allocate ~plan ~schedule ~units:storage_ids
  in
  let state =
    {
      layout;
      plan;
      schedule;
      allocation;
      droplets = Hashtbl.create 64;
      outputs = Hashtbl.create 64;
      next_id = 0;
      events = [];
      heatmap =
        Array.make_matrix (Chip.Layout.height layout) (Chip.Layout.width layout)
          0;
      requirements = [];
      step = 0;
    }
  in
  let tc = Mdst.Schedule.completion_time schedule in
  let nodes_at t = Mdst.Schedule.at_cycle schedule t in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      each f rest
  in
  let rec cycle t =
    if t > tc + 1 then Ok ()
    else
      let* () = each (fun id -> evacuate state ~t (Mdst.Plan.node plan id)) (nodes_at (t - 1)) in
      let* () =
        if t > tc then Ok ()
        else
          each
            (fun id ->
              let node = Mdst.Plan.node plan id in
              let* operands = stage state ~t node in
              mix state ~t node operands)
            (nodes_at t)
      in
      cycle (t + 1)
  in
  let* () = cycle 1 in
  let trace = List.rev state.events in
  let stats =
    {
      cycles = tc;
      moves = Trace.moves trace;
      electrodes = Trace.electrodes trace;
      dispensed =
        List.length
          (List.filter (function Trace.Dispense _ -> true | _ -> false) trace);
      emitted = Trace.emitted trace;
      discarded =
        List.length
          (List.filter (function Trace.Discard _ -> true | _ -> false) trace);
      violations = Trace.violations trace;
      heatmap = state.heatmap;
      addressing = List.rev state.requirements;
    }
  in
  Ok (trace, stats)

let check ~plan stats =
  let want = Mdst.Plan.targets plan in
  let got = List.length stats.emitted in
  if got <> want then
    Error (Printf.sprintf "emitted %d target droplets, expected %d" got want)
  else
    let target = Dmf.Mixture.of_ratio (Mdst.Plan.ratio plan) in
    if List.for_all (Dmf.Mixture.equal target) stats.emitted then Ok ()
    else Error "an emitted droplet does not match the target mixture"
