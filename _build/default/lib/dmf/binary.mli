(** Small helpers over powers of two and binary expansions.

    Target ratios on a DMF biochip are always approximated on a scale
    [2^d]; every algorithm in this repository manipulates powers of two,
    set-bit positions and exact halvings.  Centralising them here keeps the
    invariants (positivity, exactness) in one place. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] is [true] iff [n] is a positive power of two. *)

val pow2 : int -> int
(** [pow2 k] is [2^k].  @raise Invalid_argument if [k < 0] or [k >= 62]. *)

val floor_log2 : int -> int
(** [floor_log2 n] is the largest [k] with [2^k <= n].
    @raise Invalid_argument if [n <= 0]. *)

val log2_exact : int -> int
(** [log2_exact n] is [k] such that [n = 2^k].
    @raise Invalid_argument if [n] is not a positive power of two. *)

val popcount : int -> int
(** [popcount n] is the number of set bits of [n].
    @raise Invalid_argument if [n < 0]. *)

val set_bits : int -> int list
(** [set_bits n] is the ascending list of set-bit positions of [n],
    i.e. [n = List.fold_left (fun a j -> a + pow2 j) 0 (set_bits n)].
    @raise Invalid_argument if [n < 0]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceil (a / b)] on non-negative [a], positive [b]. *)
