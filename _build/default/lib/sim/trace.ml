type event =
  | Dispense of {
      cycle : int;
      droplet : int;
      fluid : Dmf.Fluid.t;
      reservoir : string;
    }
  | Move of {
      cycle : int;
      droplet : int;
      src : string;
      dst : string;
      path : Chip.Geometry.point list;
      cost : int;
      segregation_ok : bool;
    }
  | Mix of {
      cycle : int;
      node : int;
      mixer : string;
      value : Dmf.Mixture.t;
      operands : int * int;
      products : int * int;
    }
  | Emit of { cycle : int; droplet : int; value : Dmf.Mixture.t }
  | Discard of { cycle : int; droplet : int; waste : string }

type t = event list

let cycle_of = function
  | Dispense { cycle; _ }
  | Move { cycle; _ }
  | Mix { cycle; _ }
  | Emit { cycle; _ }
  | Discard { cycle; _ } -> cycle

let pp_event ppf = function
  | Dispense { cycle; droplet; fluid; reservoir } ->
    Format.fprintf ppf "[%3d] dispense d%d (%a) from %s" cycle droplet
      Dmf.Fluid.pp fluid reservoir
  | Move { cycle; droplet; src; dst; path = _; cost; segregation_ok } ->
    Format.fprintf ppf "[%3d] move d%d %s -> %s (%d electrodes)%s" cycle
      droplet src dst cost
      (if segregation_ok then "" else " [segregation violated]")
  | Mix { cycle; node; mixer; value; operands = a, b; products = c, d } ->
    Format.fprintf ppf "[%3d] mix-split node %d in %s: d%d + d%d -> d%d, d%d = %a"
      cycle node mixer a b c d Dmf.Mixture.pp value
  | Emit { cycle; droplet; value } ->
    Format.fprintf ppf "[%3d] emit d%d = %a" cycle droplet Dmf.Mixture.pp value
  | Discard { cycle; droplet; waste } ->
    Format.fprintf ppf "[%3d] discard d%d to %s" cycle droplet waste

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_event)
    t

let moves t =
  List.length (List.filter (function Move _ -> true | _ -> false) t)

let electrodes t =
  List.fold_left
    (fun acc -> function Move { cost; _ } -> acc + cost | _ -> acc)
    0 t

let emitted t =
  List.filter_map (function Emit { value; _ } -> Some value | _ -> None) t

let violations t =
  List.length
    (List.filter
       (function Move { segregation_ok = false; _ } -> true | _ -> false)
       t)
