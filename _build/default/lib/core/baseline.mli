(** The repeated baseline schemes RMM, RRMA and RMTCS (Section 4.2.1).

    A baseline mixing tree produces two target droplets per pass, so a
    demand [D] takes [ceil (D/2)] independent passes.  Each pass is
    scheduled optimally (OMS) with the given mixers; passes run back to
    back, so [Tr], [Wr], [Ir] and [Tms] scale [ceil (D/2)]-fold while the
    storage requirement [qr] is that of a single pass. *)

val pass_metrics :
  algorithm:Mixtree.Algorithm.t ->
  ratio:Dmf.Ratio.t ->
  mixers:int ->
  Metrics.t
(** Metrics of one pass (demand 2) of the repeated scheme. *)

val metrics :
  algorithm:Mixtree.Algorithm.t ->
  ratio:Dmf.Ratio.t ->
  demand:int ->
  mixers:int ->
  Metrics.t
(** [metrics ~algorithm ~ratio ~demand ~mixers] is the full repeated-run
    cost: scheme name ["R" ^ algorithm], [passes = ceil (demand / 2)]. *)

val name : Mixtree.Algorithm.t -> string
(** ["RMM"], ["RRMA"], ["RMTCS"], ["RRSM"]. *)
