(* Tests for the SVG visualisation library. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

let count_substring ~needle haystack =
  let n = String.length needle in
  let rec go from acc =
    match Astring.String.find_sub ~start:from ~sub:needle haystack with
    | Some i -> go (i + n) (acc + 1)
    | None -> acc
  in
  go 0 0

let contains ~affix s = Astring.String.is_infix ~affix s

(* ------------------------------------------------------------------ *)
(* Svg builder                                                         *)

let test_document_structure () =
  let doc =
    Viz.Svg.document ~width:100. ~height:50.
      [
        Viz.Svg.rect ~x:0. ~y:0. ~w:10. ~h:10. ~fill:"#fff" ();
        Viz.Svg.text ~x:5. ~y:5. "hello";
      ]
  in
  check bool "opens svg" true (contains ~affix:"<svg" doc);
  check bool "closes svg" true (contains ~affix:"</svg>" doc);
  check bool "has rect" true (contains ~affix:"<rect" doc);
  check bool "has text content" true (contains ~affix:"hello" doc)

let test_escaping () =
  let doc =
    Viz.Svg.document ~width:10. ~height:10.
      [ Viz.Svg.text ~x:0. ~y:0. "<2,1>/4 & \"friends\"" ]
  in
  check bool "lt escaped" true (contains ~affix:"&lt;2,1&gt;/4" doc);
  check bool "amp escaped" true (contains ~affix:"&amp;" doc);
  check bool "quot escaped" true (contains ~affix:"&quot;friends&quot;" doc);
  check bool "no raw angle payload" false (contains ~affix:">/4 & " doc)

let test_palette_stable () =
  check Alcotest.string "deterministic" (Viz.Svg.palette 3) (Viz.Svg.palette 3);
  check bool "distinct neighbours" true (Viz.Svg.palette 1 <> Viz.Svg.palette 2)

(* ------------------------------------------------------------------ *)
(* Gantt SVG                                                           *)

let test_gantt_svg () =
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand:20 in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  let doc = Viz.Gantt_svg.render ~plan schedule in
  check bool "is svg" true (contains ~affix:"<svg" doc);
  (* One cell (rect + label + tooltip group) per mix-split node. *)
  check bool "has node labels" true (contains ~affix:"m11" doc);
  check int "one tooltip per node plus one per storage bar"
    (Mdst.Plan.tms plan + Mdst.Schedule.completion_time schedule)
    (count_substring ~needle:"<title>" doc);
  check bool "summarises Tc" true (contains ~affix:"Tc = 11 cycles" doc)

let test_gantt_svg_write () =
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand:4 in
  let schedule = Mdst.Mms.schedule ~plan ~mixers:2 in
  let path = Filename.temp_file "gantt" ".svg" in
  Viz.Gantt_svg.write ~path ~plan schedule;
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check bool "file holds the document" true (contains ~affix:"</svg>" contents)

(* ------------------------------------------------------------------ *)
(* Chip SVG                                                            *)

let test_chip_svg () =
  let layout = Chip.Layout.pcr_fig5 () in
  let doc = Viz.Chip_svg.render layout in
  check bool "is svg" true (contains ~affix:"<svg" doc);
  List.iter
    (fun m ->
      check bool
        (m.Chip.Chip_module.id ^ " labelled")
        true
        (contains ~affix:(">" ^ m.Chip.Chip_module.id ^ "<") doc))
    (Chip.Layout.modules layout)

let test_chip_svg_heatmap () =
  let layout = Chip.Layout.pcr_fig5 () in
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand:8 in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  match Sim.Executor.run ~layout ~plan ~schedule with
  | Error e -> Alcotest.fail e
  | Ok (_, stats) ->
    let doc = Viz.Chip_svg.render ~heatmap:stats.Sim.Executor.heatmap layout in
    check bool "mentions actuations" true (contains ~affix:"actuations" doc)

let () =
  Alcotest.run "viz"
    [
      ( "svg",
        [
          Alcotest.test_case "document structure" `Quick test_document_structure;
          Alcotest.test_case "escaping" `Quick test_escaping;
          Alcotest.test_case "palette" `Quick test_palette_stable;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "render" `Quick test_gantt_svg;
          Alcotest.test_case "write" `Quick test_gantt_svg_write;
        ] );
      ( "chip",
        [
          Alcotest.test_case "render" `Quick test_chip_svg;
          Alcotest.test_case "heatmap overlay" `Quick test_chip_svg_heatmap;
        ] );
    ]
