(** Optimal mix scheduling (OMS [13]) on plans.

    Critical-path list scheduling: at every cycle the ready mix-splits are
    ordered deepest level first and up to [Mc] of them launched.  On a
    single mixing tree this is Hu's algorithm and provably minimises the
    makespan — the optimum the paper uses to schedule base trees and the
    repeated baselines.  On general forest plans it is a strong heuristic
    (the paper's MMS and SRS are the schedulers of record there). *)

val policy : Sched_core.policy
(** OMS as a ready-set policy over the shared {!Sched_core} engine: one
    priority queue in critical-path (deepest level first) order. *)

val schedule : plan:Plan.t -> mixers:int -> Schedule.t
(** [schedule ~plan ~mixers] runs critical-path list scheduling.
    @raise Invalid_argument if [mixers < 1]. *)
