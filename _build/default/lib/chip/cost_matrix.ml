type t = {
  labels : string list;
  index : (string, int) Hashtbl.t;
  cost : int option array array;
}

let build layout =
  let labels =
    List.map (fun m -> m.Chip_module.id) (Layout.modules layout)
  in
  let n = List.length labels in
  let index = Hashtbl.create n in
  List.iteri (fun i id -> Hashtbl.add index id i) labels;
  let cost = Array.make_matrix n n None in
  List.iteri
    (fun i src ->
      List.iteri
        (fun j dst ->
          if i = j then cost.(i).(j) <- Some 0
          else if j > i then begin
            let c = Router.distance layout ~src ~dst in
            cost.(i).(j) <- c;
            cost.(j).(i) <- c
          end)
        labels)
    labels;
  { labels; index; cost }

let lookup t id =
  match Hashtbl.find_opt t.index id with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Cost_matrix: unknown module %s" id)

let reachable t ~src ~dst = t.cost.(lookup t src).(lookup t dst) <> None

let cost t ~src ~dst =
  match t.cost.(lookup t src).(lookup t dst) with
  | Some c -> c
  | None ->
    invalid_arg (Printf.sprintf "Cost_matrix: %s unreachable from %s" dst src)

let labels t = t.labels

let render ?rows ?columns t =
  let rows = Option.value ~default:t.labels rows in
  let columns = Option.value ~default:t.labels columns in
  let cell src dst =
    match t.cost.(lookup t src).(lookup t dst) with
    | Some c -> string_of_int c
    | None -> "-"
  in
  let header = "" :: columns in
  let body = List.map (fun r -> r :: List.map (cell r) columns) rows in
  let widths =
    List.map
      (fun column_cells ->
        List.fold_left (fun acc s -> max acc (String.length s)) 0 column_cells)
      (List.map
         (fun i -> List.map (fun row -> List.nth row i) (header :: body))
         (List.init (List.length header) Fun.id))
  in
  let render_row row =
    String.concat " "
      (List.map2 (fun w cell -> Printf.sprintf "%*s" w cell) widths row)
  in
  String.concat "\n" (List.map render_row (header :: body)) ^ "\n"
