(* The durable subsystem: CRC-32 known answers, record codec round-trips
   and corruption detection, WAL append -> replay round-trips including
   deliberately torn tails, snapshot load/compaction, the bounded
   Jsonl.read_line, and differential properties checking that recovery
   rebuilds exactly the state an uninterrupted run reaches. *)

open QCheck2

let pcr16 = Generators.pcr16

let with_temp_dir f =
  let dir = Filename.temp_dir "durable-test" "" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name ->
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let spec_for ?(ratio = pcr16) ?(demand = 4) ?(mixers = Some 3) () =
  {
    Service.Request.ratio;
    demand;
    algorithm = Mixtree.Algorithm.MM;
    scheduler = Mdst.Scheduler.srs;
    mixers;
    storage_limit = None;
  }

(* A small pool of specs sharing few coalesce keys, so discharge and
   LRU-touch collisions actually happen under random op streams. *)
let spec_pool =
  [|
    spec_for ();
    spec_for ~demand:8 ();
    spec_for ~ratio:(Dmf.Ratio.of_string "3:1") ~demand:4 ();
    spec_for ~ratio:(Dmf.Ratio.of_string "1:1:2") ~mixers:(Some 1) ();
  |]

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)

let crc32_known () =
  Alcotest.(check int) "empty" 0 (Durable.Crc32.string "");
  Alcotest.(check int) "check value" 0xCBF43926
    (Durable.Crc32.string "123456789");
  Alcotest.(check int) "fox" 0x414FA339
    (Durable.Crc32.string "The quick brown fox jumps over the lazy dog");
  Alcotest.(check int) "sub agrees with string" 0xCBF43926
    (Durable.Crc32.sub "xx123456789yy" ~pos:2 ~len:9)

(* ------------------------------------------------------------------ *)
(* Record codec                                                        *)

let kind_equal a b =
  match (a, b) with
  | Durable.Record.Accepted s, Durable.Record.Accepted s' ->
    Service.Request.cache_key s = Service.Request.cache_key s'
  | ( Durable.Record.Completed { spec; requests; ok },
      Durable.Record.Completed { spec = spec'; requests = r'; ok = ok' } ) ->
    Service.Request.cache_key spec = Service.Request.cache_key spec'
    && requests = r' && ok = ok'
  | _ -> false

let record_roundtrip () =
  let check_kind kind =
    let line = Durable.Record.encode ~seq:7 kind in
    match Durable.Record.decode line with
    | Ok (7, kind') ->
      Alcotest.(check bool) "kind survives" true (kind_equal kind kind')
    | Ok (seq, _) -> Alcotest.failf "wrong seq %d" seq
    | Error msg -> Alcotest.failf "decode failed: %s" msg
  in
  check_kind (Durable.Record.Accepted (spec_for ()));
  check_kind
    (Durable.Record.Completed { spec = spec_for ~demand:20 (); requests = 5; ok = true });
  check_kind
    (Durable.Record.Completed { spec = spec_for (); requests = 1; ok = false })

let record_corruption () =
  let line = Durable.Record.encode ~seq:3 (Durable.Record.Accepted (spec_for ())) in
  let reject what s =
    match Durable.Record.decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" what
  in
  (* Flip one byte in the middle: the CRC no longer matches. *)
  let flipped = Bytes.of_string line in
  let mid = String.length line / 2 in
  Bytes.set flipped mid (if Bytes.get flipped mid = '1' then '2' else '1');
  reject "a flipped byte" (Bytes.to_string flipped);
  (* A torn write: any strict prefix fails to parse or to checksum. *)
  reject "a truncated record" (String.sub line 0 (String.length line - 4));
  reject "garbage" "not json";
  reject "the empty line" ""

(* ------------------------------------------------------------------ *)
(* WAL append -> replay                                                 *)

let sample_kinds =
  [
    Durable.Record.Accepted spec_pool.(0);
    Durable.Record.Accepted spec_pool.(1);
    Durable.Record.Completed { spec = spec_pool.(0); requests = 1; ok = true };
    Durable.Record.Accepted spec_pool.(2);
    Durable.Record.Completed { spec = spec_pool.(1); requests = 1; ok = true };
    Durable.Record.Completed { spec = spec_pool.(2); requests = 1; ok = false };
    Durable.Record.Accepted spec_pool.(3);
  ]

let model_of kinds =
  let state = Durable.State.create ~cache_capacity:8 in
  List.iter (Durable.State.apply state) kinds;
  state

let write_wal dir kinds =
  let wal =
    Durable.Wal.open_segment ~dir ~start_seq:1 ~fsync:Durable.Wal.strict
  in
  List.iter (fun kind -> ignore (Durable.Wal.append wal kind)) kinds;
  Durable.Wal.close wal

let wal_replay_roundtrip () =
  with_temp_dir (fun dir ->
      write_wal dir sample_kinds;
      let state, stats = Durable.Replay.recover ~dir ~cache_capacity:8 in
      Alcotest.(check int) "all records replayed" (List.length sample_kinds)
        stats.Durable.Replay.replayed;
      Alcotest.(check int) "nothing truncated" 0 stats.Durable.Replay.truncated;
      Alcotest.(check bool) "no gap" false stats.Durable.Replay.gap;
      Alcotest.(check (option int)) "no snapshot" None
        stats.Durable.Replay.snapshot_seq;
      Alcotest.(check int) "next seq" (List.length sample_kinds + 1)
        stats.Durable.Replay.next_seq;
      Alcotest.(check bool) "state equals the model" true
        (Durable.State.equal state (model_of sample_kinds)))

let wal_torn_tail () =
  with_temp_dir (fun dir ->
      write_wal dir sample_kinds;
      (* Tear the last record mid-write: chop a few bytes off the file. *)
      let path =
        match Durable.Wal.segments ~dir with
        | [ (1, path) ] -> path
        | _ -> Alcotest.fail "expected exactly one segment"
      in
      let size = (Unix.stat path).Unix.st_size in
      Unix.truncate path (size - 4);
      let state, stats = Durable.Replay.recover ~dir ~cache_capacity:8 in
      let n = List.length sample_kinds in
      Alcotest.(check int) "tail record dropped" (n - 1)
        stats.Durable.Replay.replayed;
      Alcotest.(check int) "one torn line" 1 stats.Durable.Replay.truncated;
      Alcotest.(check bool) "no gap" false stats.Durable.Replay.gap;
      let shorter = List.filteri (fun i _ -> i < n - 1) sample_kinds in
      Alcotest.(check bool) "state equals the model minus the tail" true
        (Durable.State.equal state (model_of shorter)))

(* The two-crash scenario: crash #1 tears the FIRST record of a fresh
   segment, so recovery's next_seq equals that segment's start_seq and
   the manager re-opens the very same file for appending.  Without the
   repair pass the new record's bytes merge with the torn partial line
   into one CRC-invalid line, and crash #2 then loses the whole
   segment — including records that were fsynced and acknowledged. *)
let torn_head_segment_repaired () =
  with_temp_dir (fun dir ->
      write_wal dir sample_kinds;
      let n = List.length sample_kinds in
      let next = Filename.concat dir (Durable.Wal.segment_name (n + 1)) in
      let line =
        Durable.Record.encode ~seq:(n + 1)
          (Durable.Record.Accepted spec_pool.(0))
      in
      let oc = open_out_bin next in
      output_string oc (String.sub line 0 (String.length line / 2));
      close_out oc;
      let config =
        {
          Durable.Manager.dir;
          fsync = Durable.Wal.strict;
          snapshot_every = 0;
          cache_capacity = 8;
        }
      in
      let manager, recovery = Durable.Manager.start config in
      Alcotest.(check int) "replayed up to the torn head" n
        recovery.Durable.Replay.replayed;
      Alcotest.(check int) "torn head dropped" 1
        recovery.Durable.Replay.truncated;
      Alcotest.(check int) "journal resumes at the torn segment's seq"
        (n + 1) recovery.Durable.Replay.next_seq;
      (* Journal one record (strict fsync: it is on disk) and crash
         again — no close, no snapshot. *)
      Durable.Manager.on_accept manager spec_pool.(3);
      let state, stats = Durable.Replay.recover ~dir ~cache_capacity:8 in
      Alcotest.(check int) "every acknowledged record recovered" (n + 1)
        stats.Durable.Replay.replayed;
      Alcotest.(check int) "no torn lines on the second boot" 0
        stats.Durable.Replay.truncated;
      Alcotest.(check bool) "no gap" false stats.Durable.Replay.gap;
      Alcotest.(check bool) "state includes the post-repair record" true
        (Durable.State.equal state
           (model_of
              (sample_kinds @ [ Durable.Record.Accepted spec_pool.(3) ]))))

(* A lost segment leaves a sequence gap.  The boot that detects it must
   snapshot what it recovered and move the unreachable segments aside:
   otherwise every later boot re-hits the gap and aborts before reaching
   the journal this daemon goes on to write. *)
let gap_segments_quarantined () =
  with_temp_dir (fun dir ->
      let head = List.filteri (fun i _ -> i < 3) sample_kinds in
      let tail = List.filteri (fun i _ -> i >= 5) sample_kinds in
      let w1 =
        Durable.Wal.open_segment ~dir ~start_seq:1 ~fsync:Durable.Wal.strict
      in
      List.iter (fun k -> ignore (Durable.Wal.append w1 k)) head;
      Durable.Wal.close w1;
      (* Seqs 4..5 never make it to disk: the next segment starts at 6. *)
      let w2 =
        Durable.Wal.open_segment ~dir ~start_seq:6 ~fsync:Durable.Wal.strict
      in
      List.iter (fun k -> ignore (Durable.Wal.append w2 k)) tail;
      Durable.Wal.close w2;
      let config =
        {
          Durable.Manager.dir;
          fsync = Durable.Wal.strict;
          snapshot_every = 0;
          cache_capacity = 8;
        }
      in
      let manager, recovery = Durable.Manager.start config in
      Alcotest.(check bool) "gap detected" true recovery.Durable.Replay.gap;
      Alcotest.(check int) "records before the gap applied" 3
        recovery.Durable.Replay.replayed;
      Alcotest.(check int) "both old segments quarantined" 2
        (Durable.Manager.quarantined_segments manager);
      (* The daemon keeps serving; crash without a clean close. *)
      Durable.Manager.on_accept manager spec_pool.(3);
      Durable.Manager.on_complete manager ~spec:spec_pool.(3) ~requests:1
        ~ok:true;
      let state, stats = Durable.Replay.recover ~dir ~cache_capacity:8 in
      Alcotest.(check bool) "no gap on the second boot" false
        stats.Durable.Replay.gap;
      Alcotest.(check (option int)) "snapshot covers the pre-gap state"
        (Some 3) stats.Durable.Replay.snapshot_seq;
      Alcotest.(check int) "post-quarantine records recovered" 2
        stats.Durable.Replay.replayed;
      Alcotest.(check bool) "state = pre-gap + post-quarantine records" true
        (Durable.State.equal state
           (model_of
              (head
              @ [
                  Durable.Record.Accepted spec_pool.(3);
                  Durable.Record.Completed
                    { spec = spec_pool.(3); requests = 1; ok = true };
                ]))))

(* lockf locks never conflict within one process, so the double-daemon
   guard is probed from a forked child, exactly the situation it is
   there to prevent. *)
let dir_lock_exclusive () =
  with_temp_dir (fun dir ->
      let config =
        {
          Durable.Manager.dir;
          fsync = Durable.Wal.strict;
          snapshot_every = 0;
          cache_capacity = 8;
        }
      in
      let manager, _ = Durable.Manager.start config in
      Analysis.Runtime.assert_no_domains_spawned ();
      (match Unix.fork () with
      | 0 -> (
        match Durable.Manager.start config with
        | exception Failure _ -> Unix._exit 0
        | _ -> Unix._exit 1)
      | pid -> (
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _ ->
          Alcotest.fail "a second process was allowed to journal to the dir"));
      Durable.Manager.close manager;
      (* A clean close releases the claim. *)
      let manager2, _ = Durable.Manager.start config in
      Durable.Manager.close manager2)

let missing_dir_recovers_empty () =
  let state, stats =
    Durable.Replay.recover ~dir:"/nonexistent/durable-test" ~cache_capacity:8
  in
  Alcotest.(check int) "nothing replayed" 0 stats.Durable.Replay.replayed;
  Alcotest.(check int) "next seq is 1" 1 stats.Durable.Replay.next_seq;
  Alcotest.(check bool) "empty state" true
    (Durable.State.equal state (Durable.State.create ~cache_capacity:8))

(* ------------------------------------------------------------------ *)
(* Group commit                                                        *)

(* Counters under deterministic single-threaded use: a strict commit
   after every append leads its own fsync of exactly one record; a
   batch of appends followed by one commit is one group fsync covering
   them all; a commit at an already-covered seq does nothing. *)
let group_commit_counters () =
  with_temp_dir (fun dir ->
      let wal =
        Durable.Wal.open_segment ~dir ~start_seq:1 ~fsync:Durable.Wal.strict
      in
      let n = List.length sample_kinds in
      List.iter
        (fun kind ->
          let seq = Durable.Wal.append wal kind in
          Durable.Wal.commit wal ~upto:seq)
        sample_kinds;
      Alcotest.(check int) "one group commit per sequential record" n
        (Durable.Wal.group_commits wal);
      Alcotest.(check (float 1e-9)) "batches of one" 1.0
        (Durable.Wal.avg_batch_size wal);
      let last =
        List.fold_left
          (fun _ kind -> Durable.Wal.append wal kind)
          0 sample_kinds
      in
      Durable.Wal.commit wal ~upto:last;
      Alcotest.(check int) "the batch is one group commit" (n + 1)
        (Durable.Wal.group_commits wal);
      Alcotest.(check (float 1e-9)) "batch size averages in"
        (float_of_int (2 * n) /. float_of_int (n + 1))
        (Durable.Wal.avg_batch_size wal);
      Durable.Wal.commit wal ~upto:last;
      Alcotest.(check int) "covered seq needs no new fsync" (n + 1)
        (Durable.Wal.group_commits wal);
      Durable.Wal.close wal;
      let _, stats = Durable.Replay.recover ~dir ~cache_capacity:8 in
      Alcotest.(check int) "every committed record recovered" (2 * n)
        stats.Durable.Replay.replayed)

(* Concurrent journaling threads under strict durability: every record
   must be on disk when its call returns (recovery proves it), while
   the commit queue is free to cover many records per fsync.  Batch
   sharing itself is timing-dependent, so the assertions are the safe
   invariants: fsyncs never exceed appends, and the counters stay
   consistent. *)
let group_commit_concurrent () =
  with_temp_dir (fun dir ->
      let config =
        {
          Durable.Manager.dir;
          fsync = Durable.Wal.strict;
          snapshot_every = 0;
          cache_capacity = 8;
        }
      in
      let manager, _ = Durable.Manager.start config in
      let threads = 4 and per_thread = 25 in
      let workers =
        List.init threads (fun i ->
            Thread.create
              (fun () ->
                for _ = 1 to per_thread do
                  Durable.Manager.on_accept manager
                    spec_pool.(i mod Array.length spec_pool)
                done)
              ())
      in
      List.iter Thread.join workers;
      let appends = Durable.Manager.appends manager in
      Alcotest.(check int) "every call journaled one record"
        (threads * per_thread) appends;
      if Durable.Manager.fsyncs manager > appends then
        Alcotest.failf "%d fsyncs for %d strict appends"
          (Durable.Manager.fsyncs manager)
          appends;
      Alcotest.(check bool) "group commits happened" true
        (Durable.Manager.group_commits manager > 0);
      Alcotest.(check bool) "avg batch size is at least one" true
        (Durable.Manager.avg_batch_size manager >= 1.0);
      (* Crash without close: strict durability means every record a
         caller returned from is recoverable. *)
      let _, stats = Durable.Replay.recover ~dir ~cache_capacity:8 in
      Alcotest.(check int) "all strict appends recovered"
        (threads * per_thread) stats.Durable.Replay.replayed;
      Durable.Manager.close manager)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

let snapshot_roundtrip () =
  with_temp_dir (fun dir ->
      let state = model_of sample_kinds in
      let path = Durable.Snapshot.write ~dir ~seq:7 state in
      (match Durable.Snapshot.load ~cache_capacity:8 path with
      | Ok state' ->
        Alcotest.(check bool) "snapshot round-trips the state" true
          (Durable.State.equal state state')
      | Error msg -> Alcotest.failf "load failed: %s" msg);
      (* A corrupted newer snapshot is skipped in favour of an older one. *)
      let older = model_of (List.filteri (fun i _ -> i < 3) sample_kinds) in
      ignore (Durable.Snapshot.write ~dir ~seq:3 older);
      let newer = open_out_gen [ Open_append ] 0o644 path in
      output_string newer "garbage";
      close_out newer;
      match Durable.Snapshot.load_latest ~dir ~cache_capacity:8 with
      | Some (3, state') ->
        Alcotest.(check bool) "fell back to the older snapshot" true
          (Durable.State.equal older state')
      | Some (seq, _) -> Alcotest.failf "loaded snapshot #%d" seq
      | None -> Alcotest.fail "no snapshot loaded")

let snapshot_then_compact () =
  with_temp_dir (fun dir ->
      let config =
        {
          Durable.Manager.dir;
          fsync = Durable.Wal.strict;
          snapshot_every = 3;
          cache_capacity = 8;
        }
      in
      let manager, recovery = Durable.Manager.start config in
      Alcotest.(check int) "fresh dir" 0 recovery.Durable.Replay.replayed;
      List.iter
        (function
          | Durable.Record.Accepted spec -> Durable.Manager.on_accept manager spec
          | Durable.Record.Completed { spec; requests; ok } ->
            Durable.Manager.on_complete manager ~spec ~requests ~ok)
        sample_kinds;
      let live = Durable.Manager.state manager in
      Durable.Manager.close manager;
      (* Snapshots were taken every 3 records, segments rotated and old
         ones dropped; recovery must still land on the same state. *)
      Alcotest.(check bool) "snapshots exist" true
        (Durable.Snapshot.list ~dir <> []);
      Alcotest.(check bool) "old segments compacted" true
        (List.length (Durable.Wal.segments ~dir) <= 2);
      let state, stats = Durable.Replay.recover ~dir ~cache_capacity:8 in
      Alcotest.(check bool) "recovered from a snapshot" true
        (stats.Durable.Replay.snapshot_seq <> None);
      Alcotest.(check bool) "recovered state = live state" true
        (Durable.State.equal state live);
      Alcotest.(check bool) "recovered state = uninterrupted model" true
        (Durable.State.equal state (model_of sample_kinds)))

(* ------------------------------------------------------------------ *)
(* Bounded line reader (the Jsonl hardening)                           *)

let read_line_cases () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "lines" in
      let oc = open_out path in
      output_string oc "short\n";
      output_string oc (String.make 40 'x');
      output_string oc "\nafter\ntail-without-newline";
      close_out oc;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          (match Service.Jsonl.read_line ~max_bytes:16 ic with
          | Service.Jsonl.Line "short" -> ()
          | _ -> Alcotest.fail "short line misread");
          (match Service.Jsonl.read_line ~max_bytes:16 ic with
          | Service.Jsonl.Oversized 40 -> ()
          | _ -> Alcotest.fail "oversized line not rejected");
          (* The stream stays line-synchronized after a rejection. *)
          (match Service.Jsonl.read_line ~max_bytes:16 ic with
          | Service.Jsonl.Line "after" -> ()
          | _ -> Alcotest.fail "lost synchronization after oversized line");
          (match Service.Jsonl.read_line ~max_bytes:32 ic with
          | Service.Jsonl.Tail "tail-without-newline" -> ()
          | _ -> Alcotest.fail "truncated final line not flagged");
          match Service.Jsonl.read_line ic with
          | Service.Jsonl.Eof -> ()
          | _ -> Alcotest.fail "missing Eof"))

(* ------------------------------------------------------------------ *)
(* Differential properties: recovery = the uninterrupted run           *)

type op = Accept of int | Complete of int * int * bool

let op_gen =
  let open Gen in
  let idx = int_range 0 (Array.length spec_pool - 1) in
  oneof
    [
      map (fun i -> Accept i) idx;
      map3 (fun i r ok -> Complete (i, r, ok)) idx (int_range 1 3) bool;
    ]

let kind_of_op = function
  | Accept i -> Durable.Record.Accepted spec_pool.(i)
  | Complete (i, r, ok) ->
    Durable.Record.Completed { spec = spec_pool.(i); requests = r; ok }

let op_print = function
  | Accept i -> Printf.sprintf "A%d" i
  | Complete (i, r, ok) -> Printf.sprintf "C%d(%d,%b)" i r ok

let prop_manager_recovery =
  Generators.qtest ~count:60
    "random op streams: manager mirror = recovery = reference replay"
    Gen.(
      triple
        (list_size (int_range 1 30) op_gen)
        (int_range 0 5) (int_range 1 8))
    (Print.triple (Print.list op_print) string_of_int string_of_int)
    (fun (ops, snapshot_every, every_n) ->
      with_temp_dir (fun dir ->
          let config =
            {
              Durable.Manager.dir;
              fsync = { Durable.Wal.every_n; every_ms = 0. };
              snapshot_every;
              cache_capacity = 4;
            }
          in
          let manager, _ = Durable.Manager.start config in
          let reference = Durable.State.create ~cache_capacity:4 in
          List.iter
            (fun op ->
              let kind = kind_of_op op in
              Durable.State.apply reference kind;
              match kind with
              | Durable.Record.Accepted spec ->
                Durable.Manager.on_accept manager spec
              | Durable.Record.Completed { spec; requests; ok } ->
                Durable.Manager.on_complete manager ~spec ~requests ~ok)
            ops;
          let mirror = Durable.Manager.state manager in
          Durable.Manager.close manager;
          let recovered, stats = Durable.Replay.recover ~dir ~cache_capacity:4 in
          (not stats.Durable.Replay.gap)
          && stats.Durable.Replay.truncated = 0
          && Durable.State.equal mirror reference
          && Durable.State.equal recovered reference))

let prop_torn_tail_recovery =
  Generators.qtest ~count:60
    "a torn journal tail recovers to the state minus the last record"
    Gen.(list_size (int_range 1 25) op_gen)
    (Print.list op_print)
    (fun ops ->
      with_temp_dir (fun dir ->
          let kinds = List.map kind_of_op ops in
          write_wal dir kinds;
          let path =
            match Durable.Wal.segments ~dir with
            | (_, path) :: _ -> path
            | [] -> failwith "no segment"
          in
          let size = (Unix.stat path).Unix.st_size in
          Unix.truncate path (size - 4);
          let recovered, stats = Durable.Replay.recover ~dir ~cache_capacity:4 in
          let n = List.length kinds in
          let reference = Durable.State.create ~cache_capacity:4 in
          List.iteri
            (fun i kind -> if i < n - 1 then Durable.State.apply reference kind)
            kinds;
          stats.Durable.Replay.replayed = n - 1
          && stats.Durable.Replay.truncated = 1
          && (not stats.Durable.Replay.gap)
          && Durable.State.equal recovered reference))

(* ------------------------------------------------------------------ *)
(* Server-level differential over the generator corpus                 *)

(* Strip the fields that legitimately differ between the original run
   and a replayed one: timing, and cache_hit (a recovered server
   answers re-issued requests from the rebuilt cache). *)
let normalize json =
  match json with
  | Service.Jsonl.Obj kvs ->
    Service.Jsonl.Obj
      (List.filter
         (fun (k, _) -> k <> "elapsed_ms" && k <> "cache_hit")
         kvs)
  | j -> j

let round_trip server requests =
  let req_read, req_write = Unix.pipe ~cloexec:false () in
  let resp_read, resp_write = Unix.pipe ~cloexec:false () in
  let server_ic = Unix.in_channel_of_descr req_read in
  let server_oc = Unix.out_channel_of_descr resp_write in
  let server_thread =
    Thread.create
      (fun () ->
        Service.Server.serve_channels server server_ic server_oc;
        close_out_noerr server_oc;
        close_in_noerr server_ic)
      ()
  in
  let client_oc = Unix.out_channel_of_descr req_write in
  let client_ic = Unix.in_channel_of_descr resp_read in
  List.iter
    (fun line ->
      output_string client_oc line;
      output_char client_oc '\n')
    requests;
  close_out client_oc;
  let responses =
    List.map
      (fun _ ->
        match Service.Jsonl.of_string (input_line client_ic) with
        | Ok json -> json
        | Error msg -> Alcotest.failf "bad response line: %s" msg)
      requests
  in
  Thread.join server_thread;
  close_in_noerr client_ic;
  responses

let server_recovery_differential () =
  with_temp_dir (fun dir ->
      (* Distinct corpus ratios: no coalescing races with one worker,
         so both runs are fully deterministic. *)
      let ratios =
        List.filteri (fun i _ -> i < 6) (Lazy.force Generators.corpus_slice)
      in
      let lines =
        List.mapi
          (fun i ratio ->
            Printf.sprintf
              {|{"req": "prepare", "ratio": "%s", "D": 32, "id": %d}|}
              (Dmf.Ratio.to_string ratio) i)
          ratios
      in
      let config =
        {
          Durable.Manager.dir;
          fsync = Durable.Wal.strict;
          snapshot_every = 4;
          cache_capacity = 16;
        }
      in
      let manager, _ = Durable.Manager.start config in
      let server =
        Service.Server.create ~workers:1 ~cache_capacity:16
          ~on_accept:(Durable.Manager.on_accept manager)
          ~on_complete:(fun ~spec ~requests ~ok ->
            Durable.Manager.on_complete manager ~spec ~requests ~ok)
          ()
      in
      let original = round_trip server lines in
      (* The durable mirror tracks the real server's cache exactly. *)
      Alcotest.(check (list string)) "mirror matches the live cache"
        (Service.Server.cache_keys server)
        (Durable.State.cache_keys (Durable.Manager.state manager));
      Service.Server.stop server;
      Durable.Manager.close manager;
      (* Boot a second daemon from the directory, exactly as dmfd does. *)
      let manager2, recovery = Durable.Manager.start config in
      Alcotest.(check int) "no pending jobs after a clean run" 0
        (List.length (Durable.Manager.recovered_pending manager2));
      Alcotest.(check bool) "recovery loaded a snapshot" true
        (recovery.Durable.Replay.snapshot_seq <> None);
      let server2 = Service.Server.create ~workers:1 ~cache_capacity:16 () in
      let primed =
        Service.Server.prime server2
          ~cache:(Durable.Manager.recovered_cache manager2)
          ~pending:(Durable.Manager.recovered_pending manager2)
      in
      Alcotest.(check int) "every plan rebuilt" (List.length lines)
        (primed.Service.Server.replanned + primed.Service.Server.from_store);
      Alcotest.(check (list string)) "recovered cache recency preserved"
        (Durable.State.cache_keys (Durable.Manager.state manager2))
        (Service.Server.cache_keys server2);
      (* Re-issuing the stream must produce identical payloads. *)
      let replayed = round_trip server2 lines in
      List.iter2
        (fun a b ->
          if not (Service.Jsonl.equal (normalize a) (normalize b)) then
            Alcotest.failf "payload diverged:\n  %s\n  %s"
              (Service.Jsonl.to_string a) (Service.Jsonl.to_string b))
        original replayed;
      (* ... and entirely from the recovered plan cache. *)
      List.iter
        (fun json ->
          match
            Option.bind
              (Service.Jsonl.member "cache_hit" json)
              Service.Jsonl.to_bool
          with
          | Some true -> ()
          | _ -> Alcotest.fail "replayed request missed the recovered cache")
        replayed;
      Service.Server.stop server2;
      Durable.Manager.close manager2)

let () =
  Alcotest.run "durable"
    [
      ( "crc32",
        [ Alcotest.test_case "known answers" `Quick crc32_known ] );
      ( "record",
        [
          Alcotest.test_case "encode/decode round-trip" `Quick record_roundtrip;
          Alcotest.test_case "corruption detected" `Quick record_corruption;
        ] );
      ( "replay",
        [
          Alcotest.test_case "append then recover" `Quick wal_replay_roundtrip;
          Alcotest.test_case "torn tail truncated" `Quick wal_torn_tail;
          Alcotest.test_case "missing dir = empty state" `Quick
            missing_dir_recovers_empty;
          Alcotest.test_case "torn segment head repaired before reuse" `Quick
            torn_head_segment_repaired;
          Alcotest.test_case "sequence gap quarantines old segments" `Quick
            gap_segments_quarantined;
          Alcotest.test_case "wal dir is single-writer" `Quick
            dir_lock_exclusive;
        ] );
      ( "group-commit",
        [
          Alcotest.test_case "counters under sequential and batched commits"
            `Quick group_commit_counters;
          Alcotest.test_case "concurrent strict journaling stays durable"
            `Quick group_commit_concurrent;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "write/load round-trip and fallback" `Quick
            snapshot_roundtrip;
          Alcotest.test_case "manager snapshots, rotates and compacts" `Quick
            snapshot_then_compact;
        ] );
      ( "jsonl",
        [ Alcotest.test_case "bounded read_line" `Quick read_line_cases ] );
      ( "differential",
        [
          prop_manager_recovery;
          prop_torn_tail_recovery;
          Alcotest.test_case "server recovery reproduces the run" `Quick
            server_recovery_differential;
        ] );
    ]
