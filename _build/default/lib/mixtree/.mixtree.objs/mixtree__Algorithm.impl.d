lib/mixtree/algorithm.ml: Format Minmix Mtcs Rma Rsm String
