let is_power_of_two n = n > 0 && n land (n - 1) = 0

let pow2 k =
  if k < 0 || k >= 62 then invalid_arg "Binary.pow2: exponent out of range";
  1 lsl k

let floor_log2 n =
  if n <= 0 then invalid_arg "Binary.floor_log2: non-positive argument";
  let rec loop k m = if m <= 1 then k else loop (k + 1) (m lsr 1) in
  loop 0 n

let log2_exact n =
  if not (is_power_of_two n) then
    invalid_arg "Binary.log2_exact: not a power of two";
  floor_log2 n

let popcount n =
  if n < 0 then invalid_arg "Binary.popcount: negative argument";
  let rec loop acc m = if m = 0 then acc else loop (acc + (m land 1)) (m lsr 1) in
  loop 0 n

let set_bits n =
  if n < 0 then invalid_arg "Binary.set_bits: negative argument";
  let rec loop j m acc =
    if m = 0 then List.rev acc
    else loop (j + 1) (m lsr 1) (if m land 1 = 1 then j :: acc else acc)
  in
  loop 0 n []

let ceil_div a b =
  if a < 0 || b <= 0 then invalid_arg "Binary.ceil_div: bad arguments";
  (a + b - 1) / b
