(** Mixing-forest construction (Section 4.1).

    Given a base mixing tree of depth [d] and a demand [D], the forest
    [F = T1, T2, ..., T_ceil(D/2)] is built tree by tree.  [T1] is the
    full base tree; every later component tree re-uses the spare droplets
    (port 1) left behind by earlier trees wherever a droplet of the needed
    value is available, and only recomputes the missing subtrees.  Each
    component tree contributes two target droplets at its root.

    With [sharing] enabled (the MTCS execution model), spare droplets
    become available immediately, so a tree can also feed itself; without
    it, spares are committed to the pool only once their tree is complete,
    matching the paper's figures where re-use happens strictly across
    trees. *)

val of_tree :
  ?reserves:Dmf.Mixture.t array ->
  ratio:Dmf.Ratio.t ->
  demand:int ->
  sharing:bool ->
  Mixtree.Tree.t ->
  Plan.t
(** [of_tree ~ratio ~demand ~sharing tree] grows the forest from [tree].
    [reserves] seeds the droplet pool with pre-existing stored droplets
    (available from the very first component tree) — the salvaged
    droplets of an error-recovery run ({!Recovery}).
    @raise Invalid_argument if [demand < 1] or [tree] does not realise
    [ratio]. *)

val build :
  algorithm:Mixtree.Algorithm.t -> ratio:Dmf.Ratio.t -> demand:int -> Plan.t
(** [build ~algorithm ~ratio ~demand] constructs the base tree with
    [algorithm] and grows the forest, with intra-pass sharing iff the
    algorithm calls for it ({!Mixtree.Algorithm.intra_pass_sharing}).
    Memoised on [(algorithm, parts ratio, demand)]: repeated requests
    return the shared immutable plan; safe under concurrent domains. *)

val build_multi :
  algorithm:Mixtree.Algorithm.t ->
  (Dmf.Ratio.t * int) list ->
  Plan.t
(** [build_multi ~algorithm [(r1, d1); (r2, d2); ...]] prepares several
    target mixtures over the same fluid universe in one combined forest,
    sharing the droplet pool {e across} targets — the reagent-saving
    multiple-target mode (SDMT/MDMT of Table 1, in the spirit of RSM
    [25]).  Component trees of every target appear in request order; use
    {!Plan.root_value} to identify which target a root emits.
    @raise Invalid_argument if the list is empty, a demand is non-positive
    or the ratios disagree on the number of fluids. *)

val repeated :
  algorithm:Mixtree.Algorithm.t -> ratio:Dmf.Ratio.t -> demand:int -> Plan.t
(** [repeated ~algorithm ~ratio ~demand] is the no-reuse plan of the
    repeated baselines (RMM / RRMA / RMTCS): [ceil (demand / 2)]
    independent passes of the base tree, every spare droplet wasted
    (shared within a pass for MTCS, never across passes).  Memoised like
    {!build}. *)
