(* Deepest level first; ties by tree then breadth-first index. *)
let priority a b =
  match Int.compare a.Plan.level b.Plan.level with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

let schedule ~plan ~mixers =
  if mixers < 1 then invalid_arg "Oms.schedule: at least one mixer";
  let n = Plan.n_nodes plan in
  let cycles = Array.make n 0 in
  let mixer_of = Array.make n 0 in
  let pending = Array.make n 0 in
  List.iter
    (fun node -> pending.(node.Plan.id) <- List.length (Plan.predecessors node))
    (Plan.nodes plan);
  let scheduled = Array.make n false in
  let remaining = ref n in
  let t = ref 0 in
  while !remaining > 0 do
    incr t;
    let ready =
      Plan.nodes plan
      |> List.filter (fun node ->
             (not scheduled.(node.Plan.id)) && pending.(node.Plan.id) = 0)
      |> List.sort priority
    in
    List.iteri
      (fun i node ->
        if i < mixers then begin
          let id = node.Plan.id in
          scheduled.(id) <- true;
          cycles.(id) <- !t;
          mixer_of.(id) <- i + 1;
          decr remaining;
          List.iter
            (fun port ->
              match Plan.consumer plan ~node:id ~port with
              | Some c -> pending.(c) <- pending.(c) - 1
              | None -> ())
            [ 0; 1 ]
        end)
      ready
  done;
  Schedule.create ~plan ~mixers ~cycles ~mixer_of
