(* DML005: Unix.fork after Domain.spawn — the OCaml 5 runtime cannot
   fork once a domain has ever been spawned. *)

let run () =
  let d = Domain.spawn (fun () -> ()) in
  let pid = Unix.fork () in
  if pid = 0 then exit 0;
  ignore (Unix.waitpid [] pid);
  Domain.join d
