(** Cost metrics of a mixture-preparation scheme.

    The paper's evaluation reports, per scheme: the time of completion
    [Tc] (in time-cycles, summed over passes), the peak number of on-chip
    storage units [q], the total number of mix-split steps [Tms], the
    waste-droplet count [W] and the input-droplet usage [I] / [I\[\]]. *)

type t = {
  scheme : string;  (** Display name, e.g. ["RMA+MMS"] or ["RMM"]. *)
  mixers : int;
  demand : int;
  tc : int;
  q : int;
  tms : int;
  waste : int;
  inputs : int array;
  input_total : int;
  trees : int;  (** Component trees, [|F|] (per pass for baselines). *)
  passes : int;  (** Sequential passes (1 for single-pass engines). *)
}

val of_schedule :
  scheme:string -> plan:Plan.t -> Schedule.t -> t
(** Metrics of a single-pass engine run. *)

val percent_improvement : baseline:int -> int -> float
(** [percent_improvement ~baseline v] is [(baseline - v) / baseline * 100]
    — positive when [v] improves on [baseline].  0 when [baseline] is 0. *)

val pp : Format.formatter -> t -> unit
