lib/chip/cost_matrix.mli: Layout
