type t = {
  width : int;
  height : int;
  modules : Chip_module.t list;
  by_id : (string, Chip_module.t) Hashtbl.t;
  (* O(1) occupancy: cell y*width+x holds the index of the covering
     module in [module_array], or -1 when the cell is free.  Routing
     BFS touches every cell of the grid, so the lookup must not scan
     the module list. *)
  cells : int array;
  module_array : Chip_module.t array;
  index_by_id : (string, int) Hashtbl.t;
}

let width l = l.width
let height l = l.height
let modules l = l.modules

let make ~width ~height ~modules =
  if width < 1 || height < 1 then invalid_arg "Layout.make: empty grid";
  let by_id = Hashtbl.create 16 in
  let grid_rect = { Geometry.x = 0; y = 0; w = width; h = height } in
  List.iter
    (fun m ->
      let r = m.Chip_module.rect in
      if
        not
          (Geometry.rect_contains grid_rect { Geometry.x = r.Geometry.x; y = r.Geometry.y }
          && Geometry.rect_contains grid_rect
               {
                 Geometry.x = r.Geometry.x + r.Geometry.w - 1;
                 y = r.Geometry.y + r.Geometry.h - 1;
               })
      then
        invalid_arg
          (Printf.sprintf "Layout.make: module %s outside the grid"
             m.Chip_module.id);
      if Hashtbl.mem by_id m.Chip_module.id then
        invalid_arg
          (Printf.sprintf "Layout.make: duplicate module id %s" m.Chip_module.id);
      Hashtbl.add by_id m.Chip_module.id m)
    modules;
  let rec check_overlaps = function
    | [] -> ()
    | m :: rest ->
      List.iter
        (fun m' ->
          if Geometry.rect_overlap m.Chip_module.rect m'.Chip_module.rect then
            invalid_arg
              (Printf.sprintf "Layout.make: modules %s and %s overlap"
                 m.Chip_module.id m'.Chip_module.id))
        rest;
      check_overlaps rest
  in
  check_overlaps modules;
  let module_array = Array.of_list modules in
  let index_by_id = Hashtbl.create 16 in
  Array.iteri
    (fun i m -> Hashtbl.add index_by_id m.Chip_module.id i)
    module_array;
  let cells = Array.make (width * height) (-1) in
  Array.iteri
    (fun i m ->
      List.iter
        (fun (p : Geometry.point) ->
          cells.((p.Geometry.y * width) + p.Geometry.x) <- i)
        (Geometry.rect_cells m.Chip_module.rect))
    module_array;
  { width; height; modules; by_id; cells; module_array; index_by_id }

let find l id = Hashtbl.find_opt l.by_id id

let find_exn l id =
  match find l id with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Layout: no module %s" id)

let of_kind pred l =
  List.filter pred l.modules
  |> List.sort (fun a b -> compare a.Chip_module.id b.Chip_module.id)

let mixers l =
  of_kind (fun m -> m.Chip_module.kind = Chip_module.Mixer) l
  |> List.sort (fun a b ->
         compare
           (String.length a.Chip_module.id, a.Chip_module.id)
           (String.length b.Chip_module.id, b.Chip_module.id))

let storage_units l =
  of_kind (fun m -> m.Chip_module.kind = Chip_module.Storage) l
  |> List.sort (fun a b ->
         compare
           (String.length a.Chip_module.id, a.Chip_module.id)
           (String.length b.Chip_module.id, b.Chip_module.id))

let reservoirs l =
  of_kind
    (fun m ->
      match m.Chip_module.kind with
      | Chip_module.Reservoir _ -> true
      | _ -> false)
    l
  |> List.sort (fun a b ->
         compare
           (String.length a.Chip_module.id, a.Chip_module.id)
           (String.length b.Chip_module.id, b.Chip_module.id))

let wastes l = of_kind (fun m -> m.Chip_module.kind = Chip_module.Waste) l

let output l =
  match of_kind (fun m -> m.Chip_module.kind = Chip_module.Output_port) l with
  | m :: _ -> m
  | [] -> invalid_arg "Layout: no output port"

let reservoir_for l fluid =
  let matches m =
    match m.Chip_module.kind with
    | Chip_module.Reservoir f -> Dmf.Fluid.equal f fluid
    | _ -> false
  in
  match List.find_opt matches l.modules with
  | Some m -> m
  | None -> raise Not_found

let in_bounds l (p : Geometry.point) =
  p.Geometry.x >= 0 && p.Geometry.x < l.width && p.Geometry.y >= 0
  && p.Geometry.y < l.height

let module_index_at l (p : Geometry.point) =
  if in_bounds l p then l.cells.((p.Geometry.y * l.width) + p.Geometry.x)
  else -1

let module_count l = Array.length l.module_array
let module_of_index l i = l.module_array.(i)
let index_of_id l id = Hashtbl.find_opt l.index_by_id id

let module_at l p =
  match module_index_at l p with
  | -1 -> None
  | i -> Some l.module_array.(i)

let free l p = in_bounds l p && module_index_at l p = -1

(* Programmatic placement: reservoirs alternate along the top and bottom
   edges, mixers sit in a central row, storage cells in rows below the
   mixers, waste reservoirs on the left edge, output port on the right. *)
let default ?(mixers = 3) ?(storage_units = 5) ?(wastes = 2) ~n_fluids () =
  if n_fluids < 1 then invalid_arg "Layout.default: need at least one fluid";
  if mixers < 1 then invalid_arg "Layout.default: need at least one mixer";
  let top_count = (n_fluids + 1) / 2 in
  let bottom_count = n_fluids - top_count in
  let reservoir_row_width count = 2 + (count * 5) in
  let mixer_row_width = 3 + (mixers * 7) in
  let storage_per_row w = max 1 ((w - 4) / 3) in
  let width =
    List.fold_left max 14
      [ reservoir_row_width top_count; reservoir_row_width bottom_count;
        mixer_row_width ]
  in
  let storage_rows =
    Dmf.Binary.ceil_div (max storage_units 1) (storage_per_row width)
  in
  let height = 14 + (storage_rows * 3) in
  let add acc m = m :: acc in
  let ms = ref [] in
  (* Reservoirs: even indices on the top edge, odd on the bottom. *)
  let top = ref 0 and bottom = ref 0 in
  for i = 0 to n_fluids - 1 do
    let id = Printf.sprintf "R%d" (i + 1) in
    let kind = Chip_module.Reservoir (Dmf.Fluid.make i) in
    let m =
      if i mod 2 = 0 then begin
        let x = 2 + (!top * 5) in
        incr top;
        Chip_module.make ~id ~kind ~rect:{ Geometry.x; y = 0; w = 2; h = 2 }
      end
      else begin
        let x = 2 + (!bottom * 5) in
        incr bottom;
        Chip_module.make ~id ~kind
          ~rect:{ Geometry.x; y = height - 2; w = 2; h = 2 }
      end
    in
    ms := add !ms m
  done;
  (* Mixers in a central row. *)
  for k = 0 to mixers - 1 do
    ms :=
      add !ms
        (Chip_module.make
           ~id:(Printf.sprintf "M%d" (k + 1))
           ~kind:Chip_module.Mixer
           ~rect:{ Geometry.x = 3 + (k * 7); y = 5; w = 4; h = 2 })
  done;
  (* Storage rows below the mixers. *)
  let per_row = storage_per_row width in
  for s = 0 to storage_units - 1 do
    let row = s / per_row and column = s mod per_row in
    ms :=
      add !ms
        (Chip_module.make
           ~id:(Printf.sprintf "q%d" (s + 1))
           ~kind:Chip_module.Storage
           ~rect:{ Geometry.x = 3 + (column * 3); y = 9 + (row * 3); w = 1; h = 1 })
  done;
  (* Waste reservoirs on the left edge, output port on the right. *)
  for w = 0 to wastes - 1 do
    ms :=
      add !ms
        (Chip_module.make
           ~id:(Printf.sprintf "W%d" (w + 1))
           ~kind:Chip_module.Waste
           ~rect:{ Geometry.x = 0; y = 4 + (w * 4); w = 1; h = 2 })
  done;
  ms :=
    add !ms
      (Chip_module.make ~id:"OUT" ~kind:Chip_module.Output_port
         ~rect:{ Geometry.x = width - 1; y = 5; w = 1; h = 2 });
  make ~width ~height ~modules:(List.rev !ms)

let pcr_fig5 () = default ~mixers:3 ~storage_units:5 ~wastes:2 ~n_fluids:7 ()

let render l =
  let canvas = Array.make_matrix l.height l.width '.' in
  List.iter
    (fun m ->
      List.iter
        (fun (p : Geometry.point) -> canvas.(p.Geometry.y).(p.Geometry.x) <- Chip_module.glyph m)
        (Geometry.rect_cells m.Chip_module.rect))
    l.modules;
  let buffer = Buffer.create (l.width * l.height) in
  Array.iter
    (fun row ->
      Array.iter (Buffer.add_char buffer) row;
      Buffer.add_char buffer '\n')
    canvas;
  let legend =
    List.map
      (fun m ->
        Printf.sprintf "%s=%s" m.Chip_module.id
          (Chip_module.kind_name m.Chip_module.kind))
      l.modules
  in
  Buffer.add_string buffer (String.concat " " legend);
  Buffer.add_char buffer '\n';
  Buffer.contents buffer
