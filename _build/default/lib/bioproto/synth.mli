(** The synthetic target-ratio corpus of Section 6.

    The paper evaluates the scheduling schemes on "6058 synthetic target
    ratios of N (2 <= N <= 12) different fluids with ratio-sum L = 32".
    We generate the integer partitions of [L] into exactly [N] parts —
    fluid identity is symmetric for the cost metrics, so unordered
    partitions enumerate the distinct problem instances — and expose the
    corpus both in full and as a deterministic sample for quicker runs. *)

val partitions : sum:int -> parts:int -> int list list
(** [partitions ~sum ~parts] is every partition of [sum] into exactly
    [parts] parts [>= 1], each in non-increasing order. *)

val count_partitions : sum:int -> parts:int -> int

val corpus : ?min_parts:int -> ?max_parts:int -> sum:int -> unit -> Dmf.Ratio.t list
(** [corpus ~sum ()] is the ratio corpus for ratio-sum [sum] (a power of
    two), with [min_parts = 2] and [max_parts = 12] by default — the
    paper's L = 32 corpus. *)

val corpus_size : ?min_parts:int -> ?max_parts:int -> sum:int -> unit -> int

val sample : every:int -> 'a list -> 'a list
(** [sample ~every xs] keeps every [every]-th element — a deterministic
    thinning used to keep bench runtimes reasonable.
    @raise Invalid_argument if [every < 1]. *)
