examples/protocol_sweep.mli:
